// §1.1 motivation (E9): precedence-query cost by timestamp scheme.
//
// The paper's scalability argument: pre-computed FM answers in O(1) but
// stores O(N) words per event (VM thrash at scale); compute-on-demand FM
// (POET/OLT) makes queries O(N) with a large caching-dependent constant;
// cluster timestamps answer from O(c)-word storage with a bounded number of
// comparisons. We measure query latency and recomputation volume across
// process counts on locality workloads, plus substrate throughput (B+-tree,
// FM engine, cluster engine).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/precedence_kernels.hpp"
#include "core/recursive_precedence.hpp"
#include "index/bplus_tree.hpp"
#include "monitor/monitor.hpp"
#include "timestamp/direct_dependency.hpp"
#include "timestamp/fm_store.hpp"
#include "timestamp/ondemand_fm.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

const Trace& trace_for(std::size_t n) {
  static std::vector<std::unique_ptr<Trace>> cache(512);
  if (!cache[n]) {
    cache[n] = std::make_unique<Trace>(generate_locality_random(
        {.processes = n,
         .group_size = 10,
         .intra_rate = 0.85,
         .messages = n * 30,
         .seed = 1000 + n}));
  }
  return *cache[n];
}

std::vector<std::pair<EventId, EventId>> query_pairs(const Trace& t,
                                                     std::size_t count) {
  Prng rng(7);
  const auto order = t.delivery_order();
  std::vector<std::pair<EventId, EventId>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(order[rng.index(order.size())],
                       order[rng.index(order.size())]);
  }
  return pairs;
}

void BM_Precedence_PrecomputedFm(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  const FmStore store(t);
  const auto pairs = query_pairs(t, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [e, f] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(store.precedes(e, f));
  }
  state.counters["stored_words_per_event"] =
      static_cast<double>(store.stored_elements()) /
      static_cast<double>(t.event_count());
}
BENCHMARK(BM_Precedence_PrecomputedFm)->Arg(50)->Arg(100)->Arg(200)->Arg(300);

void BM_Precedence_Cluster(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  ClusterEngineConfig config{.max_cluster_size = 13, .fm_vector_width = 300};
  ClusterTimestampEngine engine(t.process_count(), config,
                                make_merge_on_nth(10));
  engine.observe_trace(t);
  const auto pairs = query_pairs(t, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [e, f] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(engine.precedes(t.event(e), t.event(f)));
  }
  state.counters["stored_words_per_event"] =
      static_cast<double>(engine.stats().encoded_words) /
      static_cast<double>(t.event_count());
}
BENCHMARK(BM_Precedence_Cluster)->Arg(50)->Arg(100)->Arg(200)->Arg(300);

// The A/B control for the performance layer: same engine, same queries,
// arena mirror off — per-vector heap hops and binary searches instead of
// contiguous rows and dense position indices. main() verifies both paths
// agree query-for-query before any timing runs.
void BM_Precedence_ClusterLegacy(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  ClusterEngineConfig config{.max_cluster_size = 13,
                             .fm_vector_width = 300,
                             .use_arena = false};
  ClusterTimestampEngine engine(t.process_count(), config,
                                make_merge_on_nth(10));
  engine.observe_trace(t);
  const auto pairs = query_pairs(t, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [e, f] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(engine.precedes(t.event(e), t.event(f)));
  }
}
BENCHMARK(BM_Precedence_ClusterLegacy)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(300);

// The POET/OLT strategy: bounded cache, compute forward on miss. This is
// the configuration the paper blames for minutes-long scrolling at N≈1000;
// we keep N ≤ 300 and let the recomputation counter tell the story.
void BM_Precedence_OnDemandFm(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  OnDemandFmEngine engine(t, /*cache_capacity=*/256);
  const auto pairs = query_pairs(t, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [e, f] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(engine.precedes(e, f));
  }
  state.counters["recomputed_events_per_query"] =
      static_cast<double>(engine.counters().computed_events) /
      static_cast<double>(engine.counters().queries);
}
BENCHMARK(BM_Precedence_OnDemandFm)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(300)
    ->Unit(benchmark::kMicrosecond);

void BM_Precedence_DirectDependency(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  const DirectDependencyStore ddv(t);
  const auto pairs = query_pairs(t, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [e, f] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(ddv.precedes(e, f));
  }
  state.counters["edges_per_query"] =
      static_cast<double>(ddv.edges_traversed()) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_Precedence_DirectDependency)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMicrosecond);

// The generalized recursive test (used by the migration/hierarchy engines)
// vs the fast two-level test on the same timestamps: the price of
// generality.
void BM_Precedence_Recursive(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  ClusterEngineConfig config{.max_cluster_size = 13, .fm_vector_width = 300};
  ClusterTimestampEngine engine(t.process_count(), config,
                                make_merge_on_nth(10));
  engine.observe_trace(t);
  const TimestampLookup lookup = [&](EventId id) -> const ClusterTimestamp& {
    return engine.timestamp(id);
  };
  const auto pairs = query_pairs(t, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [e, f] = pairs[i++ & 1023];
    benchmark::DoNotOptimize(recursive_precedes(
        t.event(e), t.event(f), t.process_count(), lookup));
  }
}
BENCHMARK(BM_Precedence_Recursive)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Arg(300)
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------ substrate throughput

// Monitoring-entity ingestion rate: delivery manager + B+-tree index +
// cluster timestamps, the full §1 pipeline.
void BM_Monitor_Ingest(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    MonitorOptions options;
    options.cluster.max_cluster_size = 13;
    options.cluster.fm_vector_width = 300;
    MonitoringEntity monitor(t.process_count(), options);
    for (const EventId id : t.delivery_order()) {
      monitor.ingest(t.event(id));
    }
    benchmark::DoNotOptimize(monitor.stored());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.event_count()));
}
BENCHMARK(BM_Monitor_Ingest)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_Build_FmStore(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    FmStore store(t);
    benchmark::DoNotOptimize(store.stored_elements());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.event_count()));
}
BENCHMARK(BM_Build_FmStore)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_Build_ClusterEngine(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ClusterEngineConfig config{.max_cluster_size = 13,
                               .fm_vector_width = 300};
    ClusterTimestampEngine engine(t.process_count(), config,
                                  make_merge_on_nth(10));
    engine.observe_trace(t);
    benchmark::DoNotOptimize(engine.stats().encoded_words);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.event_count()));
}
BENCHMARK(BM_Build_ClusterEngine)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMillisecond);

void BM_BPlusTree_InsertLookup(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Prng rng(3);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng();
  for (auto _ : state) {
    BPlusTree<std::uint64_t, std::uint64_t> tree;
    for (const auto k : keys) tree.insert_or_assign(k, k);
    std::uint64_t found = 0;
    for (const auto k : keys) found += tree.find(k) != nullptr;
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_BPlusTree_InsertLookup)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------- arena acceptance verification

/// Seconds (best of 3) to answer `pairs` through `engine`. The event
/// records are pre-resolved so the loop times the precedence paths, not
/// the trace's bounds-checked event lookups (shared by both variants).
double time_precedes(
    const ClusterTimestampEngine& engine,
    const std::vector<std::pair<const Event*, const Event*>>& pairs) {
  using clock = std::chrono::steady_clock;
  double best = 1e100;
  for (int rep = 0; rep < 3; ++rep) {
    std::size_t hits = 0;
    const auto start = clock::now();
    for (const auto& [e, f] : pairs) {
      hits += engine.precedes(*e, *f) ? 1U : 0U;
    }
    const double s =
        std::chrono::duration<double>(clock::now() - start).count();
    benchmark::DoNotOptimize(hits);
    best = std::min(best, s);
  }
  return best;
}

/// The acceptance gate run before every benchmark session: at the largest
/// standard size the arena path must answer every query exactly like the
/// legacy path (plain AND metered, including tick accounting) — only then
/// are the timing numbers comparing like with like.
void verify_arena_exactness() {
  constexpr std::size_t kN = 300;
  const Trace& t = trace_for(kN);
  ClusterEngineConfig fast_cfg{.max_cluster_size = 13,
                               .fm_vector_width = 300};
  ClusterEngineConfig slow_cfg = fast_cfg;
  slow_cfg.use_arena = false;
  ClusterTimestampEngine fast(t.process_count(), fast_cfg,
                              make_merge_on_nth(10));
  ClusterTimestampEngine slow(t.process_count(), slow_cfg,
                              make_merge_on_nth(10));
  fast.observe_trace(t);
  slow.observe_trace(t);

  const auto pairs = query_pairs(t, 1 << 15);
  for (const auto& [e, f] : pairs) {
    const bool a = fast.precedes(t.event(e), t.event(f));
    const bool b = slow.precedes(t.event(e), t.event(f));
    CT_CHECK_MSG(a == b, "arena/legacy disagree on " << e << " -> " << f);
  }
  for (std::size_t i = 0; i < 4096; ++i) {
    const auto& [e, f] = pairs[i];
    QueryCost ca, cb;
    const auto a = fast.precedes_metered(t.event(e), t.event(f), ca);
    const auto b = slow.precedes_metered(t.event(e), t.event(f), cb);
    CT_CHECK_MSG(a == b && ca.ticks == cb.ticks,
                 "metered arena/legacy diverge on " << e << " -> " << f);
  }

  std::vector<std::pair<const Event*, const Event*>> records;
  records.reserve(pairs.size());
  for (const auto& [e, f] : pairs) {
    records.emplace_back(&t.event(e), &t.event(f));
  }
  const double slow_s = time_precedes(slow, records);
  const double fast_s = time_precedes(fast, records);
  const double per = 1e9 / static_cast<double>(pairs.size());
  std::printf(
      "[perf] N=%zu: %zu query pairs verified arena == legacy (answers and "
      "ticks)\n[perf] precedence speedup %.2fx (legacy %.1f ns/query, arena "
      "%.1f ns/query)\n\n",
      kN, pairs.size(), slow_s / fast_s, slow_s * per, fast_s * per);
}

}  // namespace
}  // namespace ct

int main(int argc, char** argv) {
  ct::verify_arena_exactness();
  auto args = ct::bench::gbench_args(argc, argv, "gbench_precedence");
  benchmark::Initialize(&args.argc, args.argv.data());
  // Which dispatch tier served this run (CT_KERNEL_TIER-overridable);
  // lands in the --json context so recorded results are attributable.
  benchmark::AddCustomContext(
      "kernel_tier", ct::kernels::to_string(ct::kernels::active_tier()));
  if (benchmark::ReportUnrecognizedArguments(args.argc, args.argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// §3.1 normalization ablation (E11).
//
// The paper argues that merging the raw-count-maximal cluster pair "is
// probably a poor choice" because big clusters communicate more "purely by
// virtue of their size", and normalizes the count by the combined cluster
// size instead. This bench runs the greedy algorithm both ways across the
// suite and compares the resulting timestamp ratios.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  ct::bench::bench_init(argc, argv, "table_normalization_ablation");
  using namespace ct;
  bench::header(
      "table_normalization_ablation", "§3.1 design choice — normalization",
      "Static greedy with normalized vs raw pair selection, suite-wide,\n"
      "over the paper's good range of maxCS values (9..17).");

  const auto suite = bench::load_suite();
  const std::vector<std::size_t> sizes{9, 11, 13, 15, 17};
  const std::vector<StrategySpec> specs{StrategySpec::static_greedy(),
                                        StrategySpec::static_greedy_raw()};
  const auto rows = sweep_many(suite.traces, suite.ids, suite.families, specs,
                               sizes);

  bench::section("csv");
  bench::print_sweep_csv(rows);

  bench::section("analysis");
  OnlineStats normalized, raw;
  std::size_t normalized_wins = 0, raw_wins = 0, ties = 0;
  const std::size_t n = suite.traces.size();
  for (std::size_t t = 0; t < n; ++t) {
    double mean_norm = 0.0, mean_raw = 0.0;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      mean_norm += rows[t].ratios[i];
      mean_raw += rows[n + t].ratios[i];
    }
    mean_norm /= static_cast<double>(sizes.size());
    mean_raw /= static_cast<double>(sizes.size());
    normalized.add(mean_norm);
    raw.add(mean_raw);
    if (mean_norm < mean_raw - 1e-9) {
      ++normalized_wins;
    } else if (mean_raw < mean_norm - 1e-9) {
      ++raw_wins;
    } else {
      ++ties;
    }
  }

  AsciiTable table({"selection rule", "mean ratio", "wins"});
  table.add_row({"normalized CR/(|ci|+|cj|)", fmt(normalized.mean(), 4),
                 std::to_string(normalized_wins)});
  table.add_row(
      {"raw CR count", fmt(raw.mean(), 4), std::to_string(raw_wins)});
  table.add_row({"(ties)", "-", std::to_string(ties)});
  table.print(std::cout);

  bench::verdict(
      "normalized selection is at least as good as raw-count selection",
      "'this is probably a poor choice ... as clusters increase in size, "
      "they are likely to have more communication with other clusters, "
      "purely by virtue of their size'",
      "mean ratio normalized=" + fmt(normalized.mean(), 4) +
          " vs raw=" + fmt(raw.mean(), 4) + "; wins " +
          std::to_string(normalized_wins) + ":" + std::to_string(raw_wins),
      normalized.mean() <= raw.mean() + 1e-6);
  return ct::bench::bench_finish();
}

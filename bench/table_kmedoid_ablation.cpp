// §3.1 rejected-approaches ablation (E7): k-means / k-medoid vs greedy.
//
// The paper implemented k-means and k-medoid variants first and rejected
// them: "they select the number of clusters to be created, rather than
// bounding the size of the desired clusters. The effect was that many
// processes were grouped within a single cluster, while the remaining
// clusters were sparse", so the cluster timestamps "would have little
// benefit over Fidge/Mattern". This bench quantifies that on a suite subset.
#include <algorithm>

#include "bench_common.hpp"
#include "cluster/comm_matrix.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/kmedoid.hpp"
#include "cluster/static_greedy.hpp"

int main(int argc, char** argv) {
  ct::bench::bench_init(argc, argv, "table_kmedoid_ablation");
  using namespace ct;
  bench::header(
      "table_kmedoid_ablation", "§3.1 text — rejected clustering approaches",
      "Cluster-size skew and resulting timestamp ratio: greedy (bounded)\n"
      "vs k-medoid and k-means (fixed count, unbounded size), maxCS=13.");

  const auto suite = bench::load_suite();
  constexpr std::size_t kMaxCs = 13;

  bench::section("csv");
  std::cout << "trace,strategy,clusters,largest,largest_frac,ratio\n";

  AsciiTable table({"trace", "strategy", "clusters", "largest", "ratio"});
  OnlineStats greedy_ratio, medoid_ratio, means_ratio;
  OnlineStats medoid_skew, means_skew, greedy_skew;

  for (std::size_t i = 0; i < suite.traces.size(); ++i) {
    // Subset: every third computation keeps the bench quick while spanning
    // all four families (the suite interleaves them).
    if (i % 3 != 0) continue;
    const Trace& trace = suite.traces[i];

    for (const auto strategy :
         {StaticStrategy::kGreedy, StaticStrategy::kKMedoid,
          StaticStrategy::kKMeans}) {
      const auto result = run_static(trace, strategy, kMaxCs);
      std::size_t largest = 0;
      for (const auto& c : result.partition) {
        largest = std::max(largest, c.size());
      }
      const double frac =
          static_cast<double>(largest) /
          static_cast<double>(trace.process_count());
      std::printf("%s,%s,%zu,%zu,%.3f,%.4f\n", suite.ids[i].c_str(),
                  to_string(strategy), result.partition.size(), largest, frac,
                  result.ratio);
      table.add_row({suite.ids[i], to_string(strategy),
                     std::to_string(result.partition.size()),
                     std::to_string(largest), fmt(result.ratio, 4)});
      switch (strategy) {
        case StaticStrategy::kGreedy:
          greedy_ratio.add(result.ratio);
          greedy_skew.add(frac);
          break;
        case StaticStrategy::kKMedoid:
          medoid_ratio.add(result.ratio);
          medoid_skew.add(frac);
          break;
        default:
          means_ratio.add(result.ratio);
          means_skew.add(frac);
          break;
      }
    }
  }

  bench::section("per-computation results");
  table.print(std::cout);

  bench::section("analysis");
  std::printf(
      "mean ratio:  greedy=%.4f  k-medoid=%.4f  k-means=%.4f\n"
      "mean largest-cluster fraction: greedy=%.3f  k-medoid=%.3f  "
      "k-means=%.3f\n",
      greedy_ratio.mean(), medoid_ratio.mean(), means_ratio.mean(),
      greedy_skew.mean(), medoid_skew.mean(), means_skew.mean());

  bench::verdict(
      "fixed-count clustering produces skewed clusters",
      "'many processes were grouped within a single cluster, while the "
      "remaining clusters were sparse'",
      "largest-cluster fraction k-medoid=" + fmt(medoid_skew.mean(), 3) +
          ", k-means=" + fmt(means_skew.mean(), 3) +
          " vs greedy=" + fmt(greedy_skew.mean(), 3),
      medoid_skew.mean() > greedy_skew.mean() &&
          means_skew.mean() > greedy_skew.mean());

  bench::verdict(
      "the skew erodes the space saving",
      "'the cluster-timestamps would have little benefit over Fidge/Mattern "
      "timestamps'",
      "mean ratio greedy=" + fmt(greedy_ratio.mean(), 3) +
          " vs k-medoid=" + fmt(medoid_ratio.mean(), 3) +
          ", k-means=" + fmt(means_ratio.mean(), 3),
      greedy_ratio.mean() < medoid_ratio.mean() &&
          greedy_ratio.mean() < means_ratio.mean());
  return ct::bench::bench_finish();
}

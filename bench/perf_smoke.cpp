// Perf-regression smoke (docs/PERF.md): reduced-size runs of the hot paths
// the performance layer accelerates, gated against a checked-in baseline.
//
// Every gated metric is machine-independent by construction:
//   * speedup_*  — same-binary, same-run ratios (legacy path time / fast
//     path time), so the machine's absolute speed divides out. A >30%
//     drop vs. the baseline ratio fails the run.
//   * det_*      — deterministic counters (cluster counts, query answers,
//     test counts, arena footprint); any deviation from the baseline fails
//     — these only change when behaviour changes.
// Absolute ns_per_* metrics are recorded for humans but never gated.
//
// Usage:
//   perf_smoke --json                      write BENCH_perf_smoke.json
//   perf_smoke --json=PATH                 write PATH
//   perf_smoke --check=BASELINE.json       gate this run against a baseline
//
// Refreshing the baseline after an intentional perf change:
//   ./build/bench/perf_smoke --json=bench/baselines/BENCH_perf_smoke.json
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/comm_matrix.hpp"
#include "cluster/static_greedy.hpp"
#include "core/engine.hpp"
#include "monitor/queries.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

constexpr std::size_t kProcesses = 128;  // reduced size: CI-friendly

volatile std::size_t g_sink = 0;  // defeats dead-code elimination

using steady = std::chrono::steady_clock;

double best_of(int reps, const auto& body) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = steady::now();
    body();
    const double s =
        std::chrono::duration<double>(steady::now() - start).count();
    best = std::min(best, s);
  }
  return best;
}

Trace make_trace() {
  return generate_locality_random({.processes = kProcesses,
                                   .group_size = 10,
                                   .intra_rate = 0.85,
                                   .messages = kProcesses * 30,
                                   .seed = 1000 + kProcesses});
}

std::vector<std::pair<EventId, EventId>> query_pairs(const Trace& t,
                                                     std::size_t count) {
  Prng rng(7);
  const auto order = t.delivery_order();
  std::vector<std::pair<EventId, EventId>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(order[rng.index(order.size())],
                       order[rng.index(order.size())]);
  }
  return pairs;
}

// ------------------------------------------------ precedence: arena A/B

void smoke_precedence(const Trace& t) {
  ClusterEngineConfig fast_cfg{.max_cluster_size = 13,
                               .fm_vector_width = kProcesses};
  ClusterEngineConfig slow_cfg = fast_cfg;
  slow_cfg.use_arena = false;
  ClusterTimestampEngine fast(t.process_count(), fast_cfg,
                              make_merge_on_nth(10));
  ClusterTimestampEngine slow(t.process_count(), slow_cfg,
                              make_merge_on_nth(10));
  fast.observe_trace(t);
  slow.observe_trace(t);

  const auto pairs = query_pairs(t, 1 << 15);
  std::size_t trues = 0;
  for (const auto& [e, f] : pairs) {
    const bool a = fast.precedes(t.event(e), t.event(f));
    const bool b = slow.precedes(t.event(e), t.event(f));
    CT_CHECK_MSG(a == b, "arena/legacy disagree on " << e << " -> " << f);
    trues += a ? 1 : 0;
  }

  // Pre-resolved records: the sweep times the precedence paths, not the
  // trace's bounds-checked event lookups (identical for both variants).
  std::vector<std::pair<const Event*, const Event*>> records;
  records.reserve(pairs.size());
  for (const auto& [e, f] : pairs) {
    records.emplace_back(&t.event(e), &t.event(f));
  }
  const auto sweep = [&](const ClusterTimestampEngine& engine) {
    std::size_t hits = 0;
    for (const auto& [e, f] : records) {
      hits += engine.precedes(*e, *f) ? 1U : 0U;
    }
    g_sink = hits;
  };
  const double slow_s = best_of(5, [&] { sweep(slow); });
  const double fast_s = best_of(5, [&] { sweep(fast); });

  const double per = 1e9 / static_cast<double>(pairs.size());
  bench::json_metric("speedup_precedence_arena", slow_s / fast_s);
  bench::json_metric("det_precedence_true", static_cast<double>(trues));
  bench::json_metric("det_cluster_receives",
                     static_cast<double>(fast.stats().cluster_receives));
  bench::json_metric("det_arena_words",
                     static_cast<double>(fast.arena_words()));
  bench::json_metric("ns_per_query_legacy", slow_s * per);
  bench::json_metric("ns_per_query_arena", fast_s * per);
  std::printf("precedence: %zu pairs, arena speedup %.2fx (%.1f -> %.1f "
              "ns/query)\n",
              pairs.size(), slow_s / fast_s, slow_s * per, fast_s * per);

  // ------------------------------------------------ frontier: cursor A/B
  Prng rng(3);
  const auto order = t.delivery_order();
  std::vector<EventId> probes;
  for (std::size_t i = 0; i < 48; ++i) {
    probes.push_back(order[rng.index(order.size())]);
  }
  const auto size_of = [&](ProcessId q) { return t.process_size(q); };
  std::size_t tests = 0;
  for (const EventId e : probes) {
    const auto cur = fast.cursor(t.event(e));
    const auto via_cursor = compute_frontiers_with(
        t.process_count(), e,
        [&](EventId a, EventId b) {
          return a == e ? cur.anchor_precedes(t.event(b))
                        : cur.precedes_anchor(t.event(a));
        },
        size_of);
    const auto via_legacy = compute_frontiers_with(
        t.process_count(), e,
        [&](EventId a, EventId b) {
          return slow.precedes(t.event(a), t.event(b));
        },
        size_of);
    CT_CHECK_MSG(
        via_cursor.greatest_predecessor == via_legacy.greatest_predecessor &&
            via_cursor.greatest_concurrent == via_legacy.greatest_concurrent,
        "frontiers diverge at probe " << e);
    tests += via_cursor.precedence_tests;
  }

  const double slow_f = best_of(5, [&] {
    std::size_t total = 0;
    for (const EventId e : probes) {
      total += compute_frontiers_with(
                   t.process_count(), e,
                   [&](EventId a, EventId b) {
                     return slow.precedes(t.event(a), t.event(b));
                   },
                   size_of)
                   .precedence_tests;
    }
    g_sink = total;
  });
  const double fast_f = best_of(5, [&] {
    std::size_t total = 0;
    for (const EventId e : probes) {
      const auto cur = fast.cursor(t.event(e));
      total += compute_frontiers_with(
                   t.process_count(), e,
                   [&](EventId a, EventId b) {
                     return a == e ? cur.anchor_precedes(t.event(b))
                                   : cur.precedes_anchor(t.event(a));
                   },
                   size_of)
                   .precedence_tests;
    }
    g_sink = total;
  });

  const double perq = 1e6 / static_cast<double>(probes.size());
  bench::json_metric("speedup_frontier_cursor", slow_f / fast_f);
  bench::json_metric("det_frontier_tests", static_cast<double>(tests));
  bench::json_metric("us_per_frontier_legacy", slow_f * perq);
  bench::json_metric("us_per_frontier_cursor", fast_f * perq);
  std::printf("frontier:   %zu queries (%zu tests), cursor speedup %.2fx "
              "(%.1f -> %.1f us/query)\n",
              probes.size(), tests, slow_f / fast_f, slow_f * perq,
              fast_f * perq);
}

// ------------------------------------------------ greedy clustering A/B

void smoke_greedy(const Trace& t) {
  const CommMatrix comm(t);
  std::size_t clusters_at_13 = 0;
  for (const std::size_t max_cs : {2UL, 5UL, 13UL, 40UL}) {
    const StaticGreedyOptions options{.max_cluster_size = max_cs};
    const auto heap = static_greedy_clusters(comm, options);
    const auto reference = static_greedy_clusters_reference(comm, options);
    CT_CHECK_MSG(heap == reference,
                 "heap greedy diverges from reference at maxCS=" << max_cs);
    if (max_cs == 13) clusters_at_13 = heap.size();
  }

  const StaticGreedyOptions options{.max_cluster_size = 13};
  const double slow_s = best_of(3, [&] {
    g_sink = static_greedy_clusters_reference(comm, options).size();
  });
  const double fast_s = best_of(3, [&] {
    g_sink = static_greedy_clusters(comm, options).size();
  });

  bench::json_metric("speedup_greedy_heap", slow_s / fast_s);
  bench::json_metric("det_greedy_clusters",
                     static_cast<double>(clusters_at_13));
  bench::json_metric("ms_greedy_reference", slow_s * 1e3);
  bench::json_metric("ms_greedy_heap", fast_s * 1e3);
  std::printf("greedy:     C=%zu, heap speedup %.2fx (%.2f -> %.2f ms), "
              "partitions identical at maxCS {2,5,13,40}\n",
              comm.process_count(), slow_s / fast_s, slow_s * 1e3,
              fast_s * 1e3);
}

// ------------------------------------------------ baseline gate (--check)

/// Minimal parser for the flat BENCH json this binary writes: extracts
/// every `"key": number` pair inside the "metrics" object. No JSON
/// library in the container, none needed for this grammar.
std::vector<std::pair<std::string, double>> parse_baseline(
    const std::string& path) {
  std::ifstream in(path);
  CT_CHECK_MSG(in.good(), "cannot read baseline " << path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::vector<std::pair<std::string, double>> out;
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, end - pos - 1);
    std::size_t after = end + 1;
    while (after < text.size() &&
           (text[after] == ':' || text[after] == ' ')) {
      ++after;
    }
    if (after < text.size() && text[after] != ':' && key != "bench" &&
        key != "metrics") {
      char* parsed_end = nullptr;
      const double value = std::strtod(text.c_str() + after, &parsed_end);
      if (parsed_end != text.c_str() + after) out.emplace_back(key, value);
    }
    pos = end + 1;
  }
  return out;
}

int check_against(const std::string& path) {
  const auto baseline = parse_baseline(path);
  const auto& measured = bench::json_sink().metrics;
  const auto lookup = [&](const std::string& key) -> const double* {
    for (const auto& [k, v] : measured) {
      if (k == key) return &v;
    }
    return nullptr;
  };

  int failures = 0;
  std::printf("\n-- baseline check vs %s --\n", path.c_str());
  for (const auto& [key, expected] : baseline) {
    const double* got = lookup(key);
    if (got == nullptr) {
      if (key.rfind("verdicts_", 0) == 0) continue;  // sink bookkeeping
      std::printf("[FAIL] %-28s missing from this run\n", key.c_str());
      ++failures;
      continue;
    }
    if (key.rfind("speedup_", 0) == 0) {
      // Ratio gate: tolerate noise, fail a >30% regression.
      const double floor = expected / 1.3;
      const bool ok = *got >= floor;
      std::printf("[%s] %-28s %.3f (baseline %.3f, floor %.3f)\n",
                  ok ? " ok " : "FAIL", key.c_str(), *got, expected, floor);
      failures += ok ? 0 : 1;
    } else if (key.rfind("det_", 0) == 0) {
      // Deterministic gate: exact or the behaviour changed.
      const bool ok = *got == expected;
      std::printf("[%s] %-28s %.0f (baseline %.0f)\n",
                  ok ? " ok " : "FAIL", key.c_str(), *got, expected);
      failures += ok ? 0 : 1;
    }
    // Absolute-time metrics: informational only, machine-dependent.
  }
  if (failures > 0) {
    std::printf("perf smoke FAILED: %d gated metric(s) regressed\n",
                failures);
    return 1;
  }
  std::printf("perf smoke passed: all gated metrics within tolerance\n");
  return 0;
}

}  // namespace
}  // namespace ct

int main(int argc, char** argv) {
  ct::bench::bench_init(argc, argv, "perf_smoke");
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--check=", 0) == 0) check_path = arg.substr(8);
  }

  ct::bench::header("perf_smoke", "perf-regression gate (docs/PERF.md)",
                    "Reduced-size A/B runs of the arena precedence path, "
                    "the frontier cursor, and the heap greedy clustering; "
                    "gated on same-run speedup ratios and deterministic "
                    "counters only.");

  const ct::Trace t = ct::make_trace();
  std::printf("trace: %zu processes, %zu events\n\n", t.process_count(),
              t.event_count());
  ct::smoke_precedence(t);
  ct::smoke_greedy(t);

  int exit_code = ct::bench::bench_finish();
  if (!check_path.empty()) {
    exit_code = std::max(exit_code, ct::check_against(check_path));
  }
  return exit_code;
}

// Perf-regression smoke (docs/PERF.md): reduced-size runs of the hot paths
// the performance layer accelerates, gated against a checked-in baseline.
//
// Every gated metric is machine-independent by construction:
//   * speedup_*  — same-binary, same-run ratios (legacy path time / fast
//     path time), so the machine's absolute speed divides out. A >30%
//     drop vs. the baseline ratio fails the run.
//   * det_*      — deterministic counters (cluster counts, query answers,
//     test counts, arena footprint); any deviation from the baseline fails
//     — these only change when behaviour changes.
// Absolute ns_per_* metrics are recorded for humans but never gated.
//
// Usage:
//   perf_smoke --json                      write BENCH_perf_smoke.json
//   perf_smoke --json=PATH                 write PATH
//   perf_smoke --check=BASELINE.json       gate this run against a baseline
//
// Refreshing the baseline after an intentional perf change:
//   ./build/bench/perf_smoke --json=bench/baselines/BENCH_perf_smoke.json
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "cluster/comm_matrix.hpp"
#include "cluster/static_greedy.hpp"
#include "core/engine.hpp"
#include "core/precedence_kernels.hpp"
#include "monitor/queries.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

constexpr std::size_t kProcesses = 128;  // reduced size: CI-friendly

volatile std::size_t g_sink = 0;  // defeats dead-code elimination

using steady = std::chrono::steady_clock;

double best_of(int reps, const auto& body) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto start = steady::now();
    body();
    const double s =
        std::chrono::duration<double>(steady::now() - start).count();
    best = std::min(best, s);
  }
  return best;
}

Trace make_trace() {
  return generate_locality_random({.processes = kProcesses,
                                   .group_size = 10,
                                   .intra_rate = 0.85,
                                   .messages = kProcesses * 30,
                                   .seed = 1000 + kProcesses});
}

std::vector<std::pair<EventId, EventId>> query_pairs(const Trace& t,
                                                     std::size_t count) {
  Prng rng(7);
  const auto order = t.delivery_order();
  std::vector<std::pair<EventId, EventId>> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.emplace_back(order[rng.index(order.size())],
                       order[rng.index(order.size())]);
  }
  return pairs;
}

// ------------------------------------------------ precedence: arena A/B

void smoke_precedence(const Trace& t) {
  ClusterEngineConfig fast_cfg{.max_cluster_size = 13,
                               .fm_vector_width = kProcesses};
  ClusterEngineConfig slow_cfg = fast_cfg;
  slow_cfg.use_arena = false;
  ClusterTimestampEngine fast(t.process_count(), fast_cfg,
                              make_merge_on_nth(10));
  ClusterTimestampEngine slow(t.process_count(), slow_cfg,
                              make_merge_on_nth(10));
  fast.observe_trace(t);
  slow.observe_trace(t);

  const auto pairs = query_pairs(t, 1 << 15);
  std::size_t trues = 0;
  for (const auto& [e, f] : pairs) {
    const bool a = fast.precedes(t.event(e), t.event(f));
    const bool b = slow.precedes(t.event(e), t.event(f));
    CT_CHECK_MSG(a == b, "arena/legacy disagree on " << e << " -> " << f);
    trues += a ? 1 : 0;
  }

  // Pre-resolved records: the sweep times the precedence paths, not the
  // trace's bounds-checked event lookups (identical for both variants).
  std::vector<std::pair<const Event*, const Event*>> records;
  records.reserve(pairs.size());
  for (const auto& [e, f] : pairs) {
    records.emplace_back(&t.event(e), &t.event(f));
  }
  const auto sweep = [&](const ClusterTimestampEngine& engine) {
    std::size_t hits = 0;
    for (const auto& [e, f] : records) {
      hits += engine.precedes(*e, *f) ? 1U : 0U;
    }
    g_sink = hits;
  };
  const double slow_s = best_of(5, [&] { sweep(slow); });
  const double fast_s = best_of(5, [&] { sweep(fast); });

  const double per = 1e9 / static_cast<double>(pairs.size());
  bench::json_metric("speedup_precedence_arena", slow_s / fast_s);
  bench::json_metric("det_precedence_true", static_cast<double>(trues));
  bench::json_metric("det_cluster_receives",
                     static_cast<double>(fast.stats().cluster_receives));
  bench::json_metric("det_arena_words",
                     static_cast<double>(fast.arena_words()));
  bench::json_metric("ns_per_query_legacy", slow_s * per);
  bench::json_metric("ns_per_query_arena", fast_s * per);
  std::printf("precedence: %zu pairs, arena speedup %.2fx (%.1f -> %.1f "
              "ns/query)\n",
              pairs.size(), slow_s / fast_s, slow_s * per, fast_s * per);

  // ------------------------------------------------ frontier: cursor A/B
  Prng rng(3);
  const auto order = t.delivery_order();
  std::vector<EventId> probes;
  for (std::size_t i = 0; i < 48; ++i) {
    probes.push_back(order[rng.index(order.size())]);
  }
  const auto size_of = [&](ProcessId q) { return t.process_size(q); };
  std::size_t tests = 0;
  for (const EventId e : probes) {
    const auto cur = fast.cursor(t.event(e));
    const auto via_cursor = compute_frontiers_with(
        t.process_count(), e,
        [&](EventId a, EventId b) {
          return a == e ? cur.anchor_precedes(t.event(b))
                        : cur.precedes_anchor(t.event(a));
        },
        size_of);
    const auto via_legacy = compute_frontiers_with(
        t.process_count(), e,
        [&](EventId a, EventId b) {
          return slow.precedes(t.event(a), t.event(b));
        },
        size_of);
    CT_CHECK_MSG(
        via_cursor.greatest_predecessor == via_legacy.greatest_predecessor &&
            via_cursor.greatest_concurrent == via_legacy.greatest_concurrent,
        "frontiers diverge at probe " << e);
    tests += via_cursor.precedence_tests;
  }

  const double slow_f = best_of(5, [&] {
    std::size_t total = 0;
    for (const EventId e : probes) {
      total += compute_frontiers_with(
                   t.process_count(), e,
                   [&](EventId a, EventId b) {
                     return slow.precedes(t.event(a), t.event(b));
                   },
                   size_of)
                   .precedence_tests;
    }
    g_sink = total;
  });
  const double fast_f = best_of(5, [&] {
    std::size_t total = 0;
    for (const EventId e : probes) {
      const auto cur = fast.cursor(t.event(e));
      total += compute_frontiers_with(
                   t.process_count(), e,
                   [&](EventId a, EventId b) {
                     return a == e ? cur.anchor_precedes(t.event(b))
                                   : cur.precedes_anchor(t.event(a));
                   },
                   size_of)
                   .precedence_tests;
    }
    g_sink = total;
  });

  const double perq = 1e6 / static_cast<double>(probes.size());
  bench::json_metric("speedup_frontier_cursor", slow_f / fast_f);
  bench::json_metric("det_frontier_tests", static_cast<double>(tests));
  bench::json_metric("us_per_frontier_legacy", slow_f * perq);
  bench::json_metric("us_per_frontier_cursor", fast_f * perq);
  std::printf("frontier:   %zu queries (%zu tests), cursor speedup %.2fx "
              "(%.1f -> %.1f us/query)\n",
              probes.size(), tests, slow_f / fast_f, slow_f * perq,
              fast_f * perq);
}

// ------------------------------------- batched precedence: dispatch tiers

void smoke_batch() {
  // Wide rows (N=300) are where the dispatch tier's lane width shows: the
  // batch-transpose path resolves arena rows once and streams the direct-
  // test operands contiguously through the widest kernel available. The
  // baseline is the pre-batch serving path: one SWAR-tier precedes_metered
  // call per pair.
  constexpr std::size_t kN = 300;
  const Trace t = generate_locality_random({.processes = kN,
                                            .group_size = 15,
                                            .intra_rate = 0.85,
                                            .messages = kN * 8,
                                            .seed = 1000 + kN});
  const ClusterEngineConfig config{.max_cluster_size = 13,
                                   .fm_vector_width = kN};
  ClusterTimestampEngine engine(t.process_count(), config,
                                make_merge_on_nth(10));
  engine.observe_trace(t);

  const auto pairs = query_pairs(t, 1 << 14);
  std::vector<std::pair<const Event*, const Event*>> records;
  records.reserve(pairs.size());
  for (const auto& [e, f] : pairs) {
    records.emplace_back(&t.event(e), &t.event(f));
  }

  const kernels::KernelTier active = kernels::active_tier();

  // Identity first: on EVERY tier this machine supports, the batch path
  // must match the sequential scalar-reference loop answer-for-answer and
  // tick-for-tick.
  std::vector<std::optional<bool>> expected(records.size());
  std::uint64_t expected_ticks = 0;
  std::size_t trues = 0;
  {
    kernels::set_kernel_tier(kernels::KernelTier::kScalar);
    QueryCost cost;
    for (std::size_t i = 0; i < records.size(); ++i) {
      expected[i] = engine.precedes_metered(*records[i].first,
                                            *records[i].second, cost);
      CT_CHECK(expected[i].has_value());
      trues += *expected[i] ? 1U : 0U;
    }
    expected_ticks = cost.ticks;
  }

  constexpr kernels::KernelTier kTiers[] = {
      kernels::KernelTier::kScalar, kernels::KernelTier::kSwar,
      kernels::KernelTier::kAvx2, kernels::KernelTier::kAvx512};
  for (const kernels::KernelTier tier : kTiers) {
    if (!kernels::tier_supported(tier)) continue;
    kernels::set_kernel_tier(tier);
    QueryCost cost;
    std::vector<std::optional<bool>> got(records.size());
    CT_CHECK_MSG(engine.precedes_batch_metered(records, cost, got.data()) ==
                     records.size(),
                 "batch run fell short on tier " << kernels::to_string(tier));
    CT_CHECK_MSG(got == expected, "batch answers diverge on tier "
                                      << kernels::to_string(tier));
    CT_CHECK_MSG(cost.ticks == expected_ticks,
                 "batch ticks diverge on tier " << kernels::to_string(tier)
                                                << ": " << cost.ticks
                                                << " != " << expected_ticks);
  }

  // Kernel-level sweeps at width N=300: the raw batched-precedence
  // primitives where the tier's lane count is the whole story. Two shapes:
  //   * batch_leq — the transpose path's streaming core (one comparison
  //     per gathered pair, no early exit);
  //   * batch_all_leq — whole-vector dominance of one query row against
  //     many stored rows (the audit/oracle sweep shape).
  // Both are gated per tier as a ratio over the SWAR tier measured in the
  // same run, so "avx512 is >=2x swar" is a machine-independent floor.
  {
    Prng rng(11);
    constexpr std::size_t kPairs = 1 << 15;
    std::vector<EventIndex> tr_bounds(kPairs), tr_comps(kPairs);
    for (std::size_t i = 0; i < kPairs; ++i) {
      tr_bounds[i] = static_cast<EventIndex>(rng.uniform(0, 1u << 20));
      tr_comps[i] = static_cast<EventIndex>(rng.uniform(0, 1u << 20));
    }
    std::vector<std::uint8_t> flags(kPairs);

    constexpr std::size_t kRows = 2048;
    std::vector<EventIndex> row_pool(kRows * kN);
    std::vector<const EventIndex*> rows(kRows);
    std::vector<EventIndex> query(kN);
    for (auto& x : query) x = static_cast<EventIndex>(rng.uniform(0, 64));
    for (std::size_t r = 0; r < kRows; ++r) {
      EventIndex* row = row_pool.data() + r * kN;
      for (std::size_t i = 0; i < kN; ++i) {
        row[i] = query[i] + static_cast<EventIndex>(rng.uniform(0, 64));
      }
      // A quarter of the rows fail dominance at a random component, so the
      // early-exit path stays exercised; the rest scan the full width.
      if (r % 4 == 0 && query[r % kN] > 0) {
        row[r % kN] = query[r % kN] - 1;
      }
      rows[r] = row;
    }
    std::vector<std::uint8_t> verdicts(kRows);

    double swar_leq = 0.0, swar_dom = 0.0;
    for (const kernels::KernelTier tier : kTiers) {
      if (!kernels::tier_supported(tier)) continue;
      const kernels::KernelOps& ops = kernels::ops_for_tier(tier);
      const double leq_s = best_of(7, [&] {
        ops.batch_leq(tr_bounds.data(), tr_comps.data(), kPairs,
                      flags.data());
        g_sink = flags[kPairs - 1];
      });
      const double dom_s = best_of(7, [&] {
        ops.batch_all_leq(query.data(), kN, rows.data(), kRows,
                          verdicts.data());
        g_sink = verdicts[kRows - 1];
      });
      if (tier == kernels::KernelTier::kSwar) {
        swar_leq = leq_s;
        swar_dom = dom_s;
      }
      const std::string name = kernels::to_string(tier);
      if (swar_leq > 0.0) {
        bench::json_metric("speedup_kernel_batch_" + name, swar_leq / leq_s);
        bench::json_metric("speedup_kernel_dominance_" + name,
                           swar_dom / dom_s);
        std::printf("kernels N=%zu: tier %-6s batch_leq %.2fx, "
                    "batch_all_leq %.2fx vs swar\n",
                    kN, name.c_str(), swar_leq / leq_s, swar_dom / dom_s);
      }
    }
    // The scalar tier ran before swar set the denominators; redo it so the
    // report is complete (tiers are ordered scalar < swar in kTiers).
    // Scalar is the correctness oracle, not a perf contract — at -O3 the
    // compiler may auto-vectorize it past hand-SWAR — so its ratios are
    // informational `ratio_` keys, not gated `speedup_` keys.
    if (kernels::tier_supported(kernels::KernelTier::kScalar)) {
      const kernels::KernelOps& ops =
          kernels::ops_for_tier(kernels::KernelTier::kScalar);
      const double leq_s = best_of(7, [&] {
        ops.batch_leq(tr_bounds.data(), tr_comps.data(), kPairs,
                      flags.data());
        g_sink = flags[kPairs - 1];
      });
      const double dom_s = best_of(7, [&] {
        ops.batch_all_leq(query.data(), kN, rows.data(), kRows,
                          verdicts.data());
        g_sink = verdicts[kRows - 1];
      });
      bench::json_metric("ratio_kernel_batch_scalar", swar_leq / leq_s);
      bench::json_metric("ratio_kernel_dominance_scalar", swar_dom / dom_s);
      std::printf("kernels N=%zu: tier scalar batch_leq %.2fx, "
                  "batch_all_leq %.2fx vs swar\n",
                  kN, swar_leq / leq_s, swar_dom / dom_s);
    }
  }

  // End-to-end canary: the engine's transpose path against the pre-batch
  // serving loop (sequential SWAR-tier precedes_metered). Random cross-
  // cluster pairs are probe-walk-bound, so this ratio hovers near 1 with
  // high run-to-run variance — reported as an informational `ratio_` key
  // (the exact det_batch_* identity gates and the kernel speedups above
  // are the stable contracts).
  kernels::set_kernel_tier(kernels::KernelTier::kSwar);
  const double seq_s = best_of(5, [&] {
    QueryCost cost;
    std::size_t hits = 0;
    for (const auto& [e, f] : records) {
      hits += *engine.precedes_metered(*e, *f, cost) ? 1U : 0U;
    }
    g_sink = hits;
  });

  const double per = 1e9 / static_cast<double>(records.size());
  std::vector<std::optional<bool>> out(records.size());
  for (const kernels::KernelTier tier : kTiers) {
    if (!kernels::tier_supported(tier)) continue;
    kernels::set_kernel_tier(tier);
    const double batch_s = best_of(5, [&] {
      QueryCost cost;
      g_sink = engine.precedes_batch_metered(records, cost, out.data());
    });
    const std::string name = kernels::to_string(tier);
    bench::json_metric("ratio_batch_engine_" + name, seq_s / batch_s);
    bench::json_metric("ns_per_batch_pair_" + name, batch_s * per);
    std::printf("batch N=%zu: tier %-6s engine speedup %.2fx vs sequential "
                "swar (%.1f -> %.1f ns/pair)\n",
                kN, name.c_str(), seq_s / batch_s, seq_s * per,
                batch_s * per);
  }
  kernels::set_kernel_tier(active);

  bench::json_metric("kernel_tier",
                     static_cast<double>(static_cast<int>(active)));
  bench::json_metric("det_batch_true", static_cast<double>(trues));
  bench::json_metric("det_batch_ticks", static_cast<double>(expected_ticks));
  std::printf("batch N=%zu: %zu pairs identical on every supported tier "
              "(active: %s)\n",
              kN, records.size(), kernels::to_string(active));
}

// ------------------------------------------------ greedy clustering A/B

void smoke_greedy(const Trace& t) {
  const CommMatrix comm(t);
  std::size_t clusters_at_13 = 0;
  for (const std::size_t max_cs : {2UL, 5UL, 13UL, 40UL}) {
    const StaticGreedyOptions options{.max_cluster_size = max_cs};
    const auto heap = static_greedy_clusters(comm, options);
    const auto reference = static_greedy_clusters_reference(comm, options);
    CT_CHECK_MSG(heap == reference,
                 "heap greedy diverges from reference at maxCS=" << max_cs);
    if (max_cs == 13) clusters_at_13 = heap.size();
  }

  const StaticGreedyOptions options{.max_cluster_size = 13};
  const double slow_s = best_of(3, [&] {
    g_sink = static_greedy_clusters_reference(comm, options).size();
  });
  const double fast_s = best_of(3, [&] {
    g_sink = static_greedy_clusters(comm, options).size();
  });

  bench::json_metric("speedup_greedy_heap", slow_s / fast_s);
  bench::json_metric("det_greedy_clusters",
                     static_cast<double>(clusters_at_13));
  bench::json_metric("ms_greedy_reference", slow_s * 1e3);
  bench::json_metric("ms_greedy_heap", fast_s * 1e3);
  std::printf("greedy:     C=%zu, heap speedup %.2fx (%.2f -> %.2f ms), "
              "partitions identical at maxCS {2,5,13,40}\n",
              comm.process_count(), slow_s / fast_s, slow_s * 1e3,
              fast_s * 1e3);
}

// ------------------------------------------------ baseline gate (--check)

/// Minimal parser for the flat BENCH json this binary writes: extracts
/// every `"key": number` pair inside the "metrics" object. No JSON
/// library in the container, none needed for this grammar.
std::vector<std::pair<std::string, double>> parse_baseline(
    const std::string& path) {
  std::ifstream in(path);
  CT_CHECK_MSG(in.good(), "cannot read baseline " << path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::vector<std::pair<std::string, double>> out;
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, end - pos - 1);
    std::size_t after = end + 1;
    while (after < text.size() &&
           (text[after] == ':' || text[after] == ' ')) {
      ++after;
    }
    if (after < text.size() && text[after] != ':' && key != "bench" &&
        key != "metrics") {
      char* parsed_end = nullptr;
      const double value = std::strtod(text.c_str() + after, &parsed_end);
      if (parsed_end != text.c_str() + after) out.emplace_back(key, value);
    }
    pos = end + 1;
  }
  return out;
}

int check_against(const std::string& path) {
  const auto baseline = parse_baseline(path);
  const auto& measured = bench::json_sink().metrics;
  const auto lookup = [&](const std::string& key) -> const double* {
    for (const auto& [k, v] : measured) {
      if (k == key) return &v;
    }
    return nullptr;
  };

  // A baseline produced on a wide machine carries per-tier keys (suffix
  // _scalar/_swar/_avx2/_avx512) this runner may not support; skip the
  // tiers not measured in THIS run instead of failing on them.
  const auto tier_suffixed = [](const std::string& key) {
    for (const char* suffix : {"_scalar", "_swar", "_avx2", "_avx512"}) {
      const std::string s(suffix);
      if (key.size() >= s.size() &&
          key.compare(key.size() - s.size(), s.size(), s) == 0) {
        return true;
      }
    }
    return false;
  };

  int failures = 0;
  std::printf("\n-- baseline check vs %s --\n", path.c_str());
  for (const auto& [key, expected] : baseline) {
    const double* got = lookup(key);
    if (got == nullptr) {
      if (key.rfind("verdicts_", 0) == 0) continue;  // sink bookkeeping
      if (tier_suffixed(key)) {
        std::printf("[skip] %-28s tier not available on this machine\n",
                    key.c_str());
        continue;
      }
      std::printf("[FAIL] %-28s missing from this run\n", key.c_str());
      ++failures;
      continue;
    }
    if (key.rfind("speedup_", 0) == 0) {
      // Ratio gate: tolerate noise, fail a >30% regression.
      const double floor = expected / 1.3;
      const bool ok = *got >= floor;
      std::printf("[%s] %-28s %.3f (baseline %.3f, floor %.3f)\n",
                  ok ? " ok " : "FAIL", key.c_str(), *got, expected, floor);
      failures += ok ? 0 : 1;
    } else if (key.rfind("det_", 0) == 0) {
      // Deterministic gate: exact or the behaviour changed.
      const bool ok = *got == expected;
      std::printf("[%s] %-28s %.0f (baseline %.0f)\n",
                  ok ? " ok " : "FAIL", key.c_str(), *got, expected);
      failures += ok ? 0 : 1;
    }
    // Absolute-time metrics: informational only, machine-dependent.
  }
  if (failures > 0) {
    std::printf("perf smoke FAILED: %d gated metric(s) regressed\n",
                failures);
    return 1;
  }
  std::printf("perf smoke passed: all gated metrics within tolerance\n");
  return 0;
}

}  // namespace
}  // namespace ct

int main(int argc, char** argv) {
  ct::bench::bench_init(argc, argv, "perf_smoke");
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--check=", 0) == 0) check_path = arg.substr(8);
  }

  ct::bench::header("perf_smoke", "perf-regression gate (docs/PERF.md)",
                    "Reduced-size A/B runs of the arena precedence path, "
                    "the frontier cursor, and the heap greedy clustering; "
                    "gated on same-run speedup ratios and deterministic "
                    "counters only.");

  const ct::Trace t = ct::make_trace();
  std::printf("trace: %zu processes, %zu events\n", t.process_count(),
              t.event_count());
  std::printf("kernel tier: %s (widest supported: %s)\n\n",
              ct::kernels::to_string(ct::kernels::active_tier()),
              ct::kernels::to_string(ct::kernels::widest_supported_tier()));
  ct::smoke_precedence(t);
  ct::smoke_batch();
  ct::smoke_greedy(t);

  int exit_code = ct::bench::bench_finish();
  if (!check_path.empty()) {
    exit_code = std::max(exit_code, ct::check_against(check_path));
  }
  return exit_code;
}

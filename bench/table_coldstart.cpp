// Out-of-core cold start — mapped CTC1 snapshot vs full WAL replay
// (robustness companion to §4; docs/FAULT_MODEL.md §10, docs/PERF.md).
//
// One large causally ordered stream (10M events by default) is ingested
// through a WAL-attached monitor on FileStorage, then published as a CTC1
// columnar generation. Three cold-start paths are measured, each in a
// freshly exec'd child process so VmHWM is that path's own peak RSS:
//
//   replay  recover_monitor over a view of the storage with every snapshot
//           (CTC1 and CTS1) hidden — the pure WAL-replay baseline;
//   mapped  ColdBytes(mmap) + MappedSnapshot + checksum/structural
//           verification — zero replay, queries served off the mapping;
//   parent  the live in-memory monitor, the ns/query floor.
//
// Every path answers the same seeded precedence sample; the answer
// checksums and state digests must agree bit for bit. Verdicts: mapped
// cold start >= 10x faster than WAL replay with a lower peak RSS, and
// mapped ns/query within 2x of the live monitor.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "durability/recovery.hpp"
#include "durability/storage.hpp"
#include "durability/wal.hpp"
#include "monitor/monitor.hpp"
#include "store/format.hpp"
#include "store/mapped_view.hpp"
#include "store/recovery_ladder.hpp"
#include "store/snapshot_store.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"

namespace {

using namespace ct;

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Peak resident set of this process in KiB (VmHWM), 0 if unavailable.
double vm_hwm_kib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr);
    }
  }
  return 0.0;
}

/// The bench stream: rounds of unary events plus a neighbor send/receive,
/// generated incrementally so 10M events never exist in memory at once.
class StreamGen {
 public:
  explicit StreamGen(std::uint32_t processes)
      : next_(processes, 1), processes_(processes) {}

  template <typename Fn>
  void run(std::uint64_t events, Fn&& emit) {
    std::uint64_t n = 0;
    for (std::uint64_t r = 0; n < events; ++r) {
      for (ProcessId p = 0; p < processes_ && n < events; ++p, ++n) {
        Event e;
        e.id = EventId{p, next_[p]++};
        e.kind = EventKind::kUnary;
        emit(e);
      }
      if (n + 2 > events) break;
      const ProcessId a = static_cast<ProcessId>(r % processes_);
      const ProcessId b = static_cast<ProcessId>((r + 1) % processes_);
      const EventIndex ai = next_[a]++;
      const EventIndex bi = next_[b]++;
      Event s;
      s.id = EventId{a, ai};
      s.kind = EventKind::kSend;
      s.partner = EventId{b, bi};
      emit(s);
      Event v;
      v.id = EventId{b, bi};
      v.kind = EventKind::kReceive;
      v.partner = EventId{a, ai};
      emit(v);
      n += 2;
    }
  }

 private:
  std::vector<EventIndex> next_;
  std::uint32_t processes_;
};

MonitorOptions monitor_options(std::uint32_t processes) {
  MonitorOptions mo;
  mo.backend = TimestampBackend::kClusterDynamic;
  mo.cluster.max_cluster_size = 8;
  mo.cluster.fm_vector_width = processes;
  mo.nth_threshold = 4.0;
  return mo;
}

constexpr std::uint64_t kQuerySeed = 0xc01d57a7ull;

/// Folds one sampled precedence pass into (answer checksum, total ns).
/// `query(i, j)` answers "delivery-log position i precedes position j".
template <typename Query>
std::pair<std::uint64_t, double> run_queries(std::uint64_t event_count,
                                             std::size_t queries,
                                             Query&& query) {
  Prng prng(kQuerySeed);
  std::uint64_t crc = 1469598103934665603ull;  // FNV offset
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t q = 0; q < queries; ++q) {
    const std::uint64_t i = prng.index(event_count);
    const std::uint64_t j = prng.index(event_count);
    crc = (crc ^ (query(i, j) ? 0x9eu : 0x31u)) * 1099511628211ull;
  }
  const double ns = ms_since(start) * 1e6;
  return {crc, ns / static_cast<double>(queries)};
}

/// Read-only view of `inner` with every snapshot object (CTC1 columnar and
/// CTS1 checkpoint) hidden: recovery over it is forced onto the pure
/// WAL-replay rung.
class SnapshotBlindStorage final : public StorageBackend {
 public:
  explicit SnapshotBlindStorage(const StorageBackend& inner)
      : inner_(inner) {}

  void create(const std::string&) override { CT_CHECK(false); }
  void append(const std::string&, std::string_view) override {
    CT_CHECK(false);
  }
  void sync(const std::string&) override { CT_CHECK(false); }
  void sync_dir() override { CT_CHECK(false); }
  void remove(const std::string&) override { CT_CHECK(false); }
  void rename(const std::string&, const std::string&) override {
    CT_CHECK(false);
  }
  bool exists(const std::string& name) const override {
    return !hidden(name) && inner_.exists(name);
  }
  std::vector<std::string> list() const override {
    std::vector<std::string> out;
    for (const std::string& name : inner_.list()) {
      if (!hidden(name)) out.push_back(name);
    }
    return out;
  }
  std::string read(const std::string& name) const override {
    CT_CHECK(!hidden(name));
    return inner_.read(name);
  }

 private:
  static bool hidden(const std::string& name) {
    return parse_columnar_name(name).has_value() ||
           is_columnar_tmp_name(name) ||
           wal::parse_snapshot_name(name).has_value();
  }
  const StorageBackend& inner_;
};

void write_metrics(const std::string& path,
                   const std::map<std::string, double>& metrics) {
  std::ofstream out(path);
  for (const auto& [key, value] : metrics) {
    out << key << " " << std::setprecision(17) << value << "\n";
  }
}

std::map<std::string, double> read_metrics(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  std::string key;
  double value = 0.0;
  while (in >> key >> value) out[key] = value;
  return out;
}

/// Child phase: pure WAL replay cold start, then the query sample.
int phase_replay(const std::string& root, std::uint32_t processes,
                 std::size_t queries, const std::string& out) {
  FileStorage files(root);
  SnapshotBlindStorage blind(files);
  const auto start = std::chrono::steady_clock::now();
  const RecoveredMonitor rec =
      recover_monitor(blind, processes, monitor_options(processes));
  const double coldstart_ms = ms_since(start);
  const auto log = rec.monitor->delivery_log();
  const auto [crc, ns] = run_queries(
      log.size(), queries, [&](std::uint64_t i, std::uint64_t j) {
        return rec.monitor->precedes(log[i], log[j]);
      });
  write_metrics(out, {{"coldstart_ms", coldstart_ms},
                      {"events", static_cast<double>(log.size())},
                      {"replayed", static_cast<double>(rec.report.replayed)},
                      {"query_ns", ns},
                      {"answers_crc", static_cast<double>(crc)},
                      {"digest",
                       static_cast<double>(rec.monitor->state_digest())},
                      {"vmhwm_kib", vm_hwm_kib()}});
  return 0;
}

/// Child phase: mapped cold start (mmap + full verification), then the same
/// query sample served straight off the mapping — no replay, no engine.
int phase_mapped(const std::string& root, std::uint32_t processes,
                 std::size_t queries, const std::string& out) {
  (void)processes;
  FileStorage files(root);
  const auto gens = list_columnar(files);
  CT_CHECK_MSG(!gens.empty(), "no published CTC1 generation under " + root);
  const auto start = std::chrono::steady_clock::now();
  MappedSnapshot snap(read_cold(files, gens.back().second));
  const double map_ms = ms_since(start);
  snap.verify_blocks();
  const double blocks_ms = ms_since(start) - map_ms;
  snap.verify_structure();
  const double coldstart_ms = ms_since(start);
  const auto [crc, ns] = run_queries(
      snap.event_count(), queries, [&](std::uint64_t i, std::uint64_t j) {
        return snap.precedes(snap.event(i), snap.event(j));
      });
  write_metrics(
      out,
      {{"coldstart_ms", coldstart_ms},
       {"map_ms", map_ms},
       {"verify_blocks_ms", blocks_ms},
       {"events", static_cast<double>(snap.event_count())},
       {"query_ns", ns},
       {"answers_crc", static_cast<double>(crc)},
       {"digest", static_cast<double>(snap.manifest().state_digest)},
       {"vmhwm_kib", vm_hwm_kib()}});
  return 0;
}

std::map<std::string, double> run_child(const std::string& self,
                                        const std::string& phase,
                                        const std::string& root,
                                        std::uint32_t processes,
                                        std::size_t queries) {
  const std::string out = root + "/phase_" + phase + ".metrics";
  std::ostringstream cmd;
  cmd << self << " --phase=" << phase << " --root=" << root
      << " --processes=" << processes << " --queries=" << queries
      << " --out=" << out;
  const int rc = std::system(cmd.str().c_str());
  CT_CHECK_MSG(rc == 0, "child phase '" + phase + "' failed");
  return read_metrics(out);
}

}  // namespace

int main(int argc, char** argv) {
  ct::bench::bench_init(argc, argv, "table_coldstart");
  using namespace ct;
  CliArgs args(argc, argv);

  const std::string phase = args.get_or("phase", "");
  const std::string root = args.get_or(
      "root",
      (std::filesystem::temp_directory_path() / "ct_bench_coldstart")
          .string());
  const auto processes =
      static_cast<std::uint32_t>(args.get_int_or("processes", 64));
  const auto queries =
      static_cast<std::size_t>(args.get_int_or("queries", 200'000));
  if (phase == "replay") {
    return phase_replay(root, processes, queries, args.get_or("out", ""));
  }
  if (phase == "mapped") {
    return phase_mapped(root, processes, queries, args.get_or("out", ""));
  }

  const auto events =
      static_cast<std::uint64_t>(args.get_int_or("events", 10'000'000));
  bench::header(
      "table_coldstart",
      "robustness — out-of-core mapped snapshot vs WAL-replay cold start",
      "One 10M-event stream ingested through a WAL on real files, published\n"
      "as a CTC1 columnar generation, then cold-started two ways in fresh\n"
      "child processes: pure WAL replay vs mmap + verify. Same seeded\n"
      "precedence sample everywhere, answers checked bit-identical.");

  std::filesystem::remove_all(root);
  FileStorage files(root);
  WalOptions wo;
  wo.policy = SyncPolicy::kNone;       // durability is not under test here
  wo.segment_bytes = 64u << 20;        // keep the segment count sane at 10M
  MonitoringEntity monitor(processes, monitor_options(processes));
  {
    DurableLog log(files, wo);
    monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
    StreamGen gen(processes);
    const auto start = std::chrono::steady_clock::now();
    gen.run(events, [&](const Event& e) { monitor.ingest(e); });
    log.sync();
    const double ingest_ms = ms_since(start);
    monitor.set_delivery_tap(nullptr);
    std::printf("\ningested %llu events in %.0f ms (%.0f events/s)\n",
                static_cast<unsigned long long>(events), ingest_ms,
                1000.0 * static_cast<double>(events) / ingest_ms);
  }
  const auto pub_start = std::chrono::steady_clock::now();
  const ColumnarPublishResult pub = publish_columnar(files, monitor, 1);
  const double publish_ms = ms_since(pub_start);
  std::printf("published %s: %llu bytes (%.2f bytes/event) in %.0f ms\n",
              pub.object.c_str(),
              static_cast<unsigned long long>(pub.bytes),
              static_cast<double>(pub.bytes) /
                  static_cast<double>(monitor.delivery_log().size()),
              publish_ms);

  // The in-memory floor, on the live monitor.
  const auto log = monitor.delivery_log();
  auto inmem = run_queries(
      log.size(), queries, [&](std::uint64_t i, std::uint64_t j) {
        return monitor.precedes(log[i], log[j]);
      });
  inmem = run_queries(  // once warm
      log.size(), queries, [&](std::uint64_t i, std::uint64_t j) {
        return monitor.precedes(log[i], log[j]);
      });
  const std::uint64_t live_digest = monitor.state_digest();
  const double parent_hwm = vm_hwm_kib();

  const auto replay =
      run_child(argv[0], "replay", root, processes, queries);
  const auto mapped =
      run_child(argv[0], "mapped", root, processes, queries);

  bench::section("csv");
  std::printf(
      "path,coldstart_ms,query_ns,peak_rss_kib,events,answers_crc_ok,"
      "digest_ok\n");
  auto row = [&](const char* name, double cold, double ns, double hwm,
                 double ev, bool crc_ok, bool digest_ok) {
    std::printf("%s,%.2f,%.1f,%.0f,%.0f,%d,%d\n", name, cold, ns, hwm, ev,
                crc_ok ? 1 : 0, digest_ok ? 1 : 0);
  };
  const auto crc_of = [&](const std::map<std::string, double>& m) {
    return m.at("answers_crc") == static_cast<double>(inmem.first);
  };
  const auto digest_of = [&](const std::map<std::string, double>& m) {
    return m.at("digest") == static_cast<double>(live_digest);
  };
  row("in-memory", 0.0, inmem.second, parent_hwm,
      static_cast<double>(log.size()), true, true);
  row("wal-replay", replay.at("coldstart_ms"), replay.at("query_ns"),
      replay.at("vmhwm_kib"), replay.at("events"), crc_of(replay),
      digest_of(replay));
  row("mapped", mapped.at("coldstart_ms"), mapped.at("query_ns"),
      mapped.at("vmhwm_kib"), mapped.at("events"), crc_of(mapped),
      digest_of(mapped));
  std::printf("mapped breakdown: mmap %.2f ms, block CRCs %.2f ms, "
              "structure %.2f ms\n",
              mapped.at("map_ms"), mapped.at("verify_blocks_ms"),
              mapped.at("coldstart_ms") - mapped.at("map_ms") -
                  mapped.at("verify_blocks_ms"));

  bench::json_metric("events", static_cast<double>(events));
  bench::json_metric("publish_ms", publish_ms);
  bench::json_metric("snapshot_bytes", static_cast<double>(pub.bytes));
  bench::json_metric("inmem_query_ns", inmem.second);
  bench::json_metric("replay_coldstart_ms", replay.at("coldstart_ms"));
  bench::json_metric("replay_query_ns", replay.at("query_ns"));
  bench::json_metric("replay_peak_rss_kib", replay.at("vmhwm_kib"));
  bench::json_metric("mapped_coldstart_ms", mapped.at("coldstart_ms"));
  bench::json_metric("mapped_query_ns", mapped.at("query_ns"));
  bench::json_metric("mapped_peak_rss_kib", mapped.at("vmhwm_kib"));

  bench::section("verdicts");
  const double speedup =
      replay.at("coldstart_ms") / mapped.at("coldstart_ms");
  const double ns_ratio = mapped.at("query_ns") / inmem.second;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1fx faster", speedup);
  bench::verdict("mapped cold start >= 10x faster than WAL replay",
                 ">= 10x", buf, speedup >= 10.0);
  std::snprintf(buf, sizeof buf, "%.0f vs %.0f KiB",
                mapped.at("vmhwm_kib"), replay.at("vmhwm_kib"));
  bench::verdict("mapped peak RSS below the replay path's", "lower", buf,
                 mapped.at("vmhwm_kib") < replay.at("vmhwm_kib"));
  std::snprintf(buf, sizeof buf, "%.2fx of in-memory", ns_ratio);
  bench::verdict("mapped ns/query within 2x of the live monitor", "<= 2x",
                 buf, ns_ratio <= 2.0);
  const bool identical = crc_of(replay) && crc_of(mapped) &&
                         digest_of(replay) && digest_of(mapped);
  bench::verdict("all three paths answer the sample bit-identically",
                 "identical", identical ? "identical" : "DIVERGED",
                 identical);

  std::filesystem::remove_all(root);
  const int rc = ct::bench::bench_finish();
  // Perf verdicts are soft (recorded in the JSON); answer divergence is a
  // correctness bug and fails the run outright.
  return identical ? rc : 1;
}

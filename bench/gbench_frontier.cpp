// §1.1's motivating operation, measured end to end (E9 companion).
//
// "to do something as simple as computing the greatest-concurrent elements
// of an event would require about 12,000 pages of virtual memory to be
// read, only to be discarded ... Elementary operations, such as
// partial-order scrolling, take several minutes as the vector size
// approaches 1000."
//
// A greatest-concurrent (frontier) query issues ~2·N·log(E/N) precedence
// tests, so the per-test cost of the timestamp scheme is multiplied by
// thousands. This bench runs the SAME frontier algorithm over three
// precedence backends: pre-computed FM, cluster timestamps, and POET/OLT's
// compute-on-demand FM.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "core/precedence_kernels.hpp"
#include "monitor/queries.hpp"
#include "timestamp/fm_store.hpp"
#include "timestamp/ondemand_fm.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

const Trace& trace_for(std::size_t n) {
  static std::vector<std::unique_ptr<Trace>> cache(512);
  if (!cache[n]) {
    cache[n] = std::make_unique<Trace>(generate_locality_random(
        {.processes = n,
         .group_size = 10,
         .intra_rate = 0.85,
         .messages = n * 30,
         .seed = 2000 + n}));
  }
  return *cache[n];
}

std::vector<EventId> probe_events(const Trace& t, std::size_t count) {
  Prng rng(3);
  const auto order = t.delivery_order();
  std::vector<EventId> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(order[rng.index(order.size())]);
  }
  return out;
}

template <typename PrecedesFn>
void run_frontiers(benchmark::State& state, const Trace& t,
                   PrecedesFn&& precedes) {
  const auto probes = probe_events(t, 64);
  std::size_t i = 0;
  std::size_t tests = 0;
  for (auto _ : state) {
    const EventId e = probes[i++ & 63];
    const auto frontiers = compute_frontiers_with(
        t.process_count(), e, precedes,
        [&](ProcessId q) { return t.process_size(q); });
    tests += frontiers.precedence_tests;
    benchmark::DoNotOptimize(frontiers.greatest_concurrent.data());
  }
  state.counters["precedence_tests_per_op"] =
      static_cast<double>(tests) / static_cast<double>(state.iterations());
}

void BM_Frontier_PrecomputedFm(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  const FmStore store(t);
  run_frontiers(state, t,
                [&](EventId a, EventId b) { return store.precedes(a, b); });
}
BENCHMARK(BM_Frontier_PrecomputedFm)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMicrosecond);

void BM_Frontier_Cluster(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  ClusterEngineConfig config{.max_cluster_size = 13, .fm_vector_width = 300};
  ClusterTimestampEngine engine(t.process_count(), config,
                                make_merge_on_nth(10));
  engine.observe_trace(t);
  run_frontiers(state, t, [&](EventId a, EventId b) {
    return engine.precedes(t.event(a), t.event(b));
  });
}
BENCHMARK(BM_Frontier_Cluster)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMicrosecond);

// A/B control: the same engine with the arena mirror off — every test pays
// the per-vector binary searches the cursor path amortizes away.
void BM_Frontier_ClusterLegacy(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  ClusterEngineConfig config{.max_cluster_size = 13,
                             .fm_vector_width = 300,
                             .use_arena = false};
  ClusterTimestampEngine engine(t.process_count(), config,
                                make_merge_on_nth(10));
  engine.observe_trace(t);
  run_frontiers(state, t, [&](EventId a, EventId b) {
    return engine.precedes(t.event(a), t.event(b));
  });
}
BENCHMARK(BM_Frontier_ClusterLegacy)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMicrosecond);

// The batched frontier kernel: a frontier query tests thousands of events
// against ONE fixed anchor, so the cursor resolves the anchor's row, dense
// covered-set index, and greatest-cluster-receive rows once per query
// instead of once per test.
void BM_Frontier_ClusterCursor(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  ClusterEngineConfig config{.max_cluster_size = 13, .fm_vector_width = 300};
  ClusterTimestampEngine engine(t.process_count(), config,
                                make_merge_on_nth(10));
  engine.observe_trace(t);
  const auto probes = probe_events(t, 64);
  std::size_t i = 0;
  std::size_t tests = 0;
  for (auto _ : state) {
    const EventId e = probes[i++ & 63];
    const auto cur = engine.cursor(t.event(e));
    const auto frontiers = compute_frontiers_with(
        t.process_count(), e,
        [&](EventId a, EventId b) {
          return a == e ? cur.anchor_precedes(t.event(b))
                        : cur.precedes_anchor(t.event(a));
        },
        [&](ProcessId q) { return t.process_size(q); });
    tests += frontiers.precedence_tests;
    benchmark::DoNotOptimize(frontiers.greatest_concurrent.data());
  }
  state.counters["precedence_tests_per_op"] =
      static_cast<double>(tests) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Frontier_ClusterCursor)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMicrosecond);

// The paper's "several minutes" regime: each of the thousands of precedence
// tests may recompute vectors. Kept to N=100 and few iterations so the
// bench binary still finishes promptly — the gap is the point.
void BM_Frontier_OnDemandFm(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  OnDemandFmEngine engine(t, /*cache_capacity=*/256);
  run_frontiers(state, t,
                [&](EventId a, EventId b) { return engine.precedes(a, b); });
}
BENCHMARK(BM_Frontier_OnDemandFm)
    ->Arg(100)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------- arena acceptance verification

/// The acceptance gate run before every benchmark session: at the largest
/// standard size the cursor path must answer every single precedence test
/// of every frontier query exactly like the legacy engine — verified
/// inside the query (test-for-test), not just on the final frontiers.
void verify_cursor_exactness() {
  constexpr std::size_t kN = 300;
  const Trace& t = trace_for(kN);
  ClusterEngineConfig fast_cfg{.max_cluster_size = 13,
                               .fm_vector_width = 300};
  ClusterEngineConfig slow_cfg = fast_cfg;
  slow_cfg.use_arena = false;
  ClusterTimestampEngine fast(t.process_count(), fast_cfg,
                              make_merge_on_nth(10));
  ClusterTimestampEngine slow(t.process_count(), slow_cfg,
                              make_merge_on_nth(10));
  fast.observe_trace(t);
  slow.observe_trace(t);

  const auto probes = probe_events(t, 64);
  const auto size_of = [&](ProcessId q) { return t.process_size(q); };
  std::size_t tests = 0;
  for (const EventId e : probes) {
    const auto cur = fast.cursor(t.event(e));
    const auto checked = [&](EventId a, EventId b) {
      const bool fast_answer = a == e ? cur.anchor_precedes(t.event(b))
                                      : cur.precedes_anchor(t.event(a));
      const bool slow_answer = slow.precedes(t.event(a), t.event(b));
      CT_CHECK_MSG(fast_answer == slow_answer,
                   "cursor/legacy disagree on " << a << " -> " << b);
      ++tests;
      return fast_answer;
    };
    const auto via_cursor =
        compute_frontiers_with(t.process_count(), e, checked, size_of);
    const auto via_legacy = compute_frontiers_with(
        t.process_count(), e,
        [&](EventId a, EventId b) {
          return slow.precedes(t.event(a), t.event(b));
        },
        size_of);
    CT_CHECK_MSG(
        via_cursor.greatest_predecessor == via_legacy.greatest_predecessor &&
            via_cursor.greatest_concurrent == via_legacy.greatest_concurrent,
        "frontiers diverge at probe " << e);
  }

  // Timing on the verified workload: full frontier queries, best of 3.
  using clock = std::chrono::steady_clock;
  const auto run = [&](auto&& precedes) {
    double best = 1e100;
    for (int rep = 0; rep < 3; ++rep) {
      std::size_t total = 0;
      const auto start = clock::now();
      for (const EventId e : probes) {
        total += precedes(e).precedence_tests;
      }
      const double s =
          std::chrono::duration<double>(clock::now() - start).count();
      benchmark::DoNotOptimize(total);
      best = std::min(best, s);
    }
    return best;
  };
  const double slow_s = run([&](EventId e) {
    return compute_frontiers_with(
        t.process_count(), e,
        [&](EventId a, EventId b) {
          return slow.precedes(t.event(a), t.event(b));
        },
        size_of);
  });
  const double fast_s = run([&](EventId e) {
    const auto cur = fast.cursor(t.event(e));
    return compute_frontiers_with(
        t.process_count(), e,
        [&](EventId a, EventId b) {
          return a == e ? cur.anchor_precedes(t.event(b))
                        : cur.precedes_anchor(t.event(a));
        },
        size_of);
  });
  const double per = 1e6 / static_cast<double>(probes.size());
  std::printf(
      "[perf] N=%zu: %zu frontier queries (%zu precedence tests) verified "
      "cursor == legacy\n[perf] frontier speedup %.2fx (legacy %.1f "
      "us/query, cursor %.1f us/query)\n\n",
      kN, probes.size(), tests, slow_s / fast_s, slow_s * per, fast_s * per);
}

}  // namespace
}  // namespace ct

int main(int argc, char** argv) {
  ct::verify_cursor_exactness();
  auto args = ct::bench::gbench_args(argc, argv, "gbench_frontier");
  benchmark::Initialize(&args.argc, args.argv.data());
  // Which dispatch tier served this run (CT_KERNEL_TIER-overridable);
  // lands in the --json context so recorded results are attributable.
  benchmark::AddCustomContext(
      "kernel_tier", ct::kernels::to_string(ct::kernels::active_tier()));
  if (benchmark::ReportUnrecognizedArguments(args.argc, args.argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// §1.1's motivating operation, measured end to end (E9 companion).
//
// "to do something as simple as computing the greatest-concurrent elements
// of an event would require about 12,000 pages of virtual memory to be
// read, only to be discarded ... Elementary operations, such as
// partial-order scrolling, take several minutes as the vector size
// approaches 1000."
//
// A greatest-concurrent (frontier) query issues ~2·N·log(E/N) precedence
// tests, so the per-test cost of the timestamp scheme is multiplied by
// thousands. This bench runs the SAME frontier algorithm over three
// precedence backends: pre-computed FM, cluster timestamps, and POET/OLT's
// compute-on-demand FM.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "monitor/queries.hpp"
#include "timestamp/fm_store.hpp"
#include "timestamp/ondemand_fm.hpp"
#include "trace/generators.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

const Trace& trace_for(std::size_t n) {
  static std::vector<std::unique_ptr<Trace>> cache(512);
  if (!cache[n]) {
    cache[n] = std::make_unique<Trace>(generate_locality_random(
        {.processes = n,
         .group_size = 10,
         .intra_rate = 0.85,
         .messages = n * 30,
         .seed = 2000 + n}));
  }
  return *cache[n];
}

std::vector<EventId> probe_events(const Trace& t, std::size_t count) {
  Prng rng(3);
  const auto order = t.delivery_order();
  std::vector<EventId> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(order[rng.index(order.size())]);
  }
  return out;
}

template <typename PrecedesFn>
void run_frontiers(benchmark::State& state, const Trace& t,
                   PrecedesFn&& precedes) {
  const auto probes = probe_events(t, 64);
  std::size_t i = 0;
  std::size_t tests = 0;
  for (auto _ : state) {
    const EventId e = probes[i++ & 63];
    const auto frontiers = compute_frontiers_with(
        t.process_count(), e, precedes,
        [&](ProcessId q) { return t.process_size(q); });
    tests += frontiers.precedence_tests;
    benchmark::DoNotOptimize(frontiers.greatest_concurrent.data());
  }
  state.counters["precedence_tests_per_op"] =
      static_cast<double>(tests) / static_cast<double>(state.iterations());
}

void BM_Frontier_PrecomputedFm(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  const FmStore store(t);
  run_frontiers(state, t,
                [&](EventId a, EventId b) { return store.precedes(a, b); });
}
BENCHMARK(BM_Frontier_PrecomputedFm)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMicrosecond);

void BM_Frontier_Cluster(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  ClusterEngineConfig config{.max_cluster_size = 13, .fm_vector_width = 300};
  ClusterTimestampEngine engine(t.process_count(), config,
                                make_merge_on_nth(10));
  engine.observe_trace(t);
  run_frontiers(state, t, [&](EventId a, EventId b) {
    return engine.precedes(t.event(a), t.event(b));
  });
}
BENCHMARK(BM_Frontier_Cluster)
    ->Arg(100)
    ->Arg(300)
    ->Unit(benchmark::kMicrosecond);

// The paper's "several minutes" regime: each of the thousands of precedence
// tests may recompute vectors. Kept to N=100 and few iterations so the
// bench binary still finishes promptly — the gap is the point.
void BM_Frontier_OnDemandFm(benchmark::State& state) {
  const Trace& t = trace_for(static_cast<std::size_t>(state.range(0)));
  OnDemandFmEngine engine(t, /*cache_capacity=*/256);
  run_frontiers(state, t,
                [&](EventId a, EventId b) { return engine.precedes(a, b); });
}
BENCHMARK(BM_Frontier_OnDemandFm)
    ->Arg(100)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ct

BENCHMARK_MAIN();

// Degradation under ingest faults — precedence-answer coverage vs. injected
// loss rate (robustness companion to the paper's §4 evaluation; see
// docs/FAULT_MODEL.md).
//
// For one representative computation per trace family, the monitor ingests
// a bursty cross-process interleaving through the seeded fault injector at
// increasing drop rates (plus mild duplication and reordering). Reported
// per (family, rate): the fraction of events delivered, the health
// accounting (quarantined / evicted / duplicates), and *coverage* — the
// fraction of sampled event pairs whose precedence the degraded monitor can
// still answer (both endpoints delivered). Answers it does give are
// verified against the exact Fidge/Mattern store.
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "monitor/fault_injector.hpp"
#include "monitor/monitor.hpp"
#include "timestamp/fm_store.hpp"
#include "trace/generators.hpp"
#include "util/prng.hpp"

namespace {

using namespace ct;

std::vector<Event> interleave(const Trace& t, std::uint64_t seed) {
  std::vector<std::vector<Event>> streams(t.process_count());
  for (const EventId id : t.delivery_order()) {
    streams[id.process].push_back(t.event(id));
  }
  std::vector<std::size_t> cursor(t.process_count(), 0);
  std::vector<Event> arrival;
  arrival.reserve(t.event_count());
  Prng rng(seed);
  std::size_t remaining = t.event_count();
  while (remaining > 0) {
    ProcessId p;
    do {
      p = static_cast<ProcessId>(rng.index(t.process_count()));
    } while (cursor[p] >= streams[p].size());
    const std::size_t burst = 1 + rng.index(4);
    for (std::size_t k = 0; k < burst && cursor[p] < streams[p].size(); ++k) {
      arrival.push_back(streams[p][cursor[p]++]);
      --remaining;
    }
  }
  return arrival;
}

struct Row {
  std::string trace_id;
  TraceFamily family = TraceFamily::kControl;
  double drop_rate = 0.0;
  double delivered_frac = 0.0;
  double coverage = 0.0;  ///< answerable fraction of sampled pairs
  MonitorHealth health;
  bool answers_exact = true;
};

Row run_one(const std::string& id, const Trace& t, double drop_rate) {
  Row row;
  row.trace_id = id;
  row.family = t.family();
  row.drop_rate = drop_rate;

  MonitorOptions options;
  options.cluster.max_cluster_size = 8;
  options.cluster.fm_vector_width = 300;
  MonitoringEntity monitor(t.process_count(), options);

  FaultPlan plan;
  plan.seed = 4001;
  plan.drop_rate = drop_rate;
  plan.dup_rate = 0.01;
  plan.reorder_rate = 0.01;
  FaultInjector injector(plan, [&](const Event& e) { monitor.ingest(e); });
  for (const Event& e : interleave(t, 13)) injector.push(e);
  injector.flush();

  row.health = monitor.health();
  row.delivered_frac = static_cast<double>(monitor.stored()) /
                       static_cast<double>(t.event_count());

  const FmStore oracle(t);
  Prng rng(29);
  const auto order = t.delivery_order();
  std::size_t answerable = 0;
  const int kPairs = 20000;
  for (int q = 0; q < kPairs; ++q) {
    const EventId e = order[rng.index(order.size())];
    const EventId f = order[rng.index(order.size())];
    if (e.index <= monitor.delivered_count(e.process) &&
        f.index <= monitor.delivered_count(f.process)) {
      ++answerable;
      if (monitor.precedes(e, f) != oracle.precedes(e, f)) {
        row.answers_exact = false;
      }
    }
  }
  row.coverage = static_cast<double>(answerable) / kPairs;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ct::bench::bench_init(argc, argv, "table_fault_degradation");
  using namespace ct;
  bench::header(
      "table_fault_degradation",
      "robustness — precedence coverage vs. injected loss",
      "One computation per trace family ingested through the seeded fault\n"
      "injector (dup/reorder 1%; drop rate swept). Coverage = fraction of\n"
      "sampled event pairs still answerable; given answers are verified\n"
      "against the exact Fidge/Mattern store.");

  struct Workload {
    std::string id;
    Trace trace;
  };
  const std::vector<Workload> workloads = {
      {"pvm/wavefront", generate_wavefront({.width = 9, .height = 9,
                                            .seed = 61})},
      {"java/web", generate_web_server({.clients = 40, .servers = 6,
                                        .backends = 3, .requests = 700,
                                        .seed = 62})},
      {"dce/rpc", generate_rpc_business({.groups = 6, .clients_per_group = 3,
                                         .servers_per_group = 2,
                                         .calls = 900, .seed = 63})},
      {"ctl/local", generate_locality_random({.processes = 60,
                                              .group_size = 10,
                                              .intra_rate = 0.9,
                                              .messages = 2000, .seed = 64})},
  };
  const std::vector<double> rates = {0.0, 0.01, 0.02, 0.05, 0.10};

  std::vector<Row> rows;
  for (const Workload& w : workloads) {
    for (const double rate : rates) rows.push_back(run_one(w.id, w.trace, rate));
  }

  bench::section("csv");
  std::cout << "trace,family,drop_rate,delivered_frac,coverage,quarantined,"
               "evicted,duplicates,max_queue_depth,accounted,exact\n";
  for (const Row& r : rows) {
    std::printf("%s,%s,%.2f,%.4f,%.4f,%llu,%llu,%llu,%llu,%d,%d\n",
                r.trace_id.c_str(), to_string(r.family), r.drop_rate,
                r.delivered_frac, r.coverage,
                static_cast<unsigned long long>(r.health.quarantined),
                static_cast<unsigned long long>(r.health.evicted),
                static_cast<unsigned long long>(r.health.duplicates),
                static_cast<unsigned long long>(r.health.max_queue_depth),
                r.health.accounted() ? 1 : 0, r.answers_exact ? 1 : 0);
  }

  bench::section("coverage vs. drop rate");
  AsciiTable table({"trace", "drop", "delivered", "coverage", "quarantined",
                    "evicted"});
  for (const Row& r : rows) {
    table.add_row({r.trace_id, fmt(r.drop_rate, 2), fmt(r.delivered_frac, 3),
                   fmt(r.coverage, 3),
                   std::to_string(r.health.quarantined),
                   std::to_string(r.health.evicted)});
  }
  table.print(std::cout);

  bench::section("analysis");
  bool all_exact = true, all_accounted = true, zero_loss_full = true;
  double loose_cov_at_5 = 0.0, tight_cov_at_5 = 0.0;
  for (const Row& r : rows) {
    all_exact = all_exact && r.answers_exact;
    all_accounted = all_accounted && r.health.accounted();
    if (r.drop_rate == 0.0 && r.delivered_frac < 1.0) zero_loss_full = false;
    if (r.drop_rate == 0.05 && r.trace_id == "ctl/local") {
      loose_cov_at_5 = r.coverage;
    }
    if (r.drop_rate == 0.05 && r.trace_id == "pvm/wavefront") {
      tight_cov_at_5 = r.coverage;
    }
  }
  bench::verdict("answers the degraded monitor gives are exact",
                 "FM-oracle agreement on delivered pairs",
                 all_exact ? "all sampled pairs agree" : "DISAGREEMENT",
                 all_exact);
  bench::verdict("health counters account for every non-delivered record",
                 "ingested == delivered+dup+rejected+evicted+pending+quar",
                 all_accounted ? "holds for every run" : "VIOLATED",
                 all_accounted);
  bench::verdict("zero injected loss -> full delivery and full coverage",
                 "reorder-only faults are absorbed by the delivery manager",
                 zero_loss_full ? "delivered_frac == 1 at rate 0"
                                : "missing deliveries at rate 0",
                 zero_loss_full);
  bench::verdict(
      "loss cascades with coupling: loosely coupled computations retain "
      "more coverage than tightly coupled ones at 5% drop",
      "a lost send blocks every causal successor (docs/FAULT_MODEL.md)",
      "ctl/local coverage " + fmt(loose_cov_at_5, 3) + " vs pvm/wavefront " +
          fmt(tight_cov_at_5, 3),
      loose_cov_at_5 >= tight_cov_at_5);
  return ct::bench::bench_finish();
}

// §5 future-work variant 2 (E13): process migration between clusters.
//
// "processes will be permitted to migrate between clusters in the event
// that it is apparent that the clustering initially selected is a poor one."
// The workload where one-shot clustering IS poor: planted locality whose
// group structure reshuffles mid-computation (sessions end, services
// rebalance). This bench compares merge-on-Nth with frozen clusters against
// the migrating engine on stable and phase-shifting workloads, plus the
// two-pass static oracle for context.
#include "bench_common.hpp"
#include "core/migrating_engine.hpp"
#include "trace/generators.hpp"

int main(int argc, char** argv) {
  ct::bench::bench_init(argc, argv, "table_migration");
  using namespace ct;
  bench::header(
      "table_migration", "§5 future work, variant 2",
      "Frozen self-organizing clusters vs cluster migration, on stable and\n"
      "phase-shifting locality workloads (maxCS=8, FM width 300).");

  struct Workload {
    const char* label;
    Trace trace;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"stable locality (1 phase)",
                       generate_phased_locality({.processes = 60,
                                                 .group_size = 6,
                                                 .intra_rate = 0.93,
                                                 .phases = 1,
                                                 .messages_per_phase = 6000,
                                                 .seed = 401})});
  workloads.push_back({"2 phases (one reshuffle)",
                       generate_phased_locality({.processes = 60,
                                                 .group_size = 6,
                                                 .intra_rate = 0.93,
                                                 .phases = 2,
                                                 .messages_per_phase = 3000,
                                                 .seed = 402})});
  workloads.push_back({"4 phases (drifting)",
                       generate_phased_locality({.processes = 60,
                                                 .group_size = 6,
                                                 .intra_rate = 0.93,
                                                 .phases = 4,
                                                 .messages_per_phase = 1500,
                                                 .seed = 403})});
  workloads.push_back({"web server (for reference)",
                       generate_web_server({.clients = 50,
                                            .servers = 6,
                                            .backends = 3,
                                            .requests = 1500,
                                            .seed = 404})});

  constexpr std::size_t kMaxCs = 8;
  constexpr double kThreshold = 2.0;

  bench::section("csv");
  std::cout << "workload,scheme,ratio,cluster_receives,migrations\n";

  AsciiTable table({"workload", "frozen Nth", "migrating", "static(2-pass)",
                    "migrations"});
  std::vector<double> frozen_ratios, migrating_ratios;
  for (const auto& [label, trace] : workloads) {
    ClusterEngineConfig frozen_config{.max_cluster_size = kMaxCs,
                                      .fm_vector_width = 300};
    ClusterTimestampEngine frozen(trace.process_count(), frozen_config,
                                  make_merge_on_nth(kThreshold));
    frozen.observe_trace(trace);
    const double frozen_ratio = frozen.stats().average_ratio(300);

    MigratingEngineConfig config;
    config.max_cluster_size = kMaxCs;
    config.fm_vector_width = 300;
    config.nth_threshold = kThreshold;
    MigratingClusterEngine migrating(trace.process_count(), config);
    migrating.observe_trace(trace);
    const double migrating_ratio = migrating.stats().average_ratio(300);

    const double static_ratio =
        run_static(trace, StaticStrategy::kGreedy, kMaxCs).ratio;

    std::printf("%s,frozen,%0.4f,%zu,0\n", label, frozen_ratio,
                frozen.stats().cluster_receives);
    std::printf("%s,migrating,%0.4f,%zu,%zu\n", label, migrating_ratio,
                migrating.stats().cluster_receives, migrating.migrations());
    std::printf("%s,static,%0.4f,%zu,0\n", label, static_ratio,
                std::size_t{0});

    table.add_row({label, fmt(frozen_ratio, 4), fmt(migrating_ratio, 4),
                   fmt(static_ratio, 4),
                   std::to_string(migrating.migrations())});
    frozen_ratios.push_back(frozen_ratio);
    migrating_ratios.push_back(migrating_ratio);
  }

  bench::section("summary");
  table.print(std::cout);

  bench::section("analysis");
  bench::verdict(
      "on stable locality, migration neither helps nor hurts much",
      "migration exists for the case where 'the clustering initially "
      "selected is a poor one' — a good initial clustering needs none",
      "stable: frozen=" + fmt(frozen_ratios[0], 4) +
          " vs migrating=" + fmt(migrating_ratios[0], 4),
      migrating_ratios[0] < frozen_ratios[0] * 1.15);
  bench::verdict(
      "after a locality reshuffle, migration recovers what frozen clusters "
      "lose",
      "§5 motivates the variant precisely for initially-poor clusterings",
      "2 phases: frozen=" + fmt(frozen_ratios[1], 4) +
          " vs migrating=" + fmt(migrating_ratios[1], 4) + "; 4 phases: " +
          fmt(frozen_ratios[2], 4) + " vs " + fmt(migrating_ratios[2], 4),
      migrating_ratios[1] < frozen_ratios[1] &&
          migrating_ratios[2] < frozen_ratios[2]);
  return ct::bench::bench_finish();
}

// §5 future-work variant 2 (E13): process migration between clusters.
//
// "processes will be permitted to migrate between clusters in the event
// that it is apparent that the clustering initially selected is a poor one."
// The workload where one-shot clustering IS poor: planted locality whose
// group structure reshuffles mid-computation (sessions end, services
// rebalance). This bench compares merge-on-Nth with frozen clusters against
// the migrating engine on stable and phase-shifting workloads, plus the
// two-pass static oracle for context.
#include <algorithm>

#include "bench_common.hpp"
#include "core/migrating_engine.hpp"
#include "monitor/monitor.hpp"
#include "recluster/coordinator.hpp"
#include "timestamp/query_cost.hpp"
#include "trace/generators.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  ct::bench::bench_init(argc, argv, "table_migration");
  using namespace ct;
  bench::header(
      "table_migration", "§5 future work, variant 2",
      "Frozen self-organizing clusters vs cluster migration, on stable and\n"
      "phase-shifting locality workloads (maxCS=8, FM width 300).");

  struct Workload {
    const char* label;
    Trace trace;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"stable locality (1 phase)",
                       generate_phased_locality({.processes = 60,
                                                 .group_size = 6,
                                                 .intra_rate = 0.93,
                                                 .phases = 1,
                                                 .messages_per_phase = 6000,
                                                 .seed = 401})});
  workloads.push_back({"2 phases (one reshuffle)",
                       generate_phased_locality({.processes = 60,
                                                 .group_size = 6,
                                                 .intra_rate = 0.93,
                                                 .phases = 2,
                                                 .messages_per_phase = 3000,
                                                 .seed = 402})});
  workloads.push_back({"4 phases (drifting)",
                       generate_phased_locality({.processes = 60,
                                                 .group_size = 6,
                                                 .intra_rate = 0.93,
                                                 .phases = 4,
                                                 .messages_per_phase = 1500,
                                                 .seed = 403})});
  workloads.push_back({"web server (for reference)",
                       generate_web_server({.clients = 50,
                                            .servers = 6,
                                            .backends = 3,
                                            .requests = 1500,
                                            .seed = 404})});

  constexpr std::size_t kMaxCs = 8;
  constexpr double kThreshold = 2.0;

  bench::section("csv");
  std::cout << "workload,scheme,ratio,cluster_receives,migrations\n";

  AsciiTable table({"workload", "frozen Nth", "migrating", "static(2-pass)",
                    "migrations"});
  std::vector<double> frozen_ratios, migrating_ratios;
  for (const auto& [label, trace] : workloads) {
    ClusterEngineConfig frozen_config{.max_cluster_size = kMaxCs,
                                      .fm_vector_width = 300};
    ClusterTimestampEngine frozen(trace.process_count(), frozen_config,
                                  make_merge_on_nth(kThreshold));
    frozen.observe_trace(trace);
    const double frozen_ratio = frozen.stats().average_ratio(300);

    MigratingEngineConfig config;
    config.max_cluster_size = kMaxCs;
    config.fm_vector_width = 300;
    config.nth_threshold = kThreshold;
    MigratingClusterEngine migrating(trace.process_count(), config);
    migrating.observe_trace(trace);
    const double migrating_ratio = migrating.stats().average_ratio(300);

    const double static_ratio =
        run_static(trace, StaticStrategy::kGreedy, kMaxCs).ratio;

    std::printf("%s,frozen,%0.4f,%zu,0\n", label, frozen_ratio,
                frozen.stats().cluster_receives);
    std::printf("%s,migrating,%0.4f,%zu,%zu\n", label, migrating_ratio,
                migrating.stats().cluster_receives, migrating.migrations());
    std::printf("%s,static,%0.4f,%zu,0\n", label, static_ratio,
                std::size_t{0});

    table.add_row({label, fmt(frozen_ratio, 4), fmt(migrating_ratio, 4),
                   fmt(static_ratio, 4),
                   std::to_string(migrating.migrations())});
    frozen_ratios.push_back(frozen_ratio);
    migrating_ratios.push_back(migrating_ratio);
  }

  bench::section("summary");
  table.print(std::cout);

  bench::section("analysis");
  bench::verdict(
      "on stable locality, migration neither helps nor hurts much",
      "migration exists for the case where 'the clustering initially "
      "selected is a poor one' — a good initial clustering needs none",
      "stable: frozen=" + fmt(frozen_ratios[0], 4) +
          " vs migrating=" + fmt(migrating_ratios[0], 4),
      migrating_ratios[0] < frozen_ratios[0] * 1.15);
  bench::verdict(
      "after a locality reshuffle, migration recovers what frozen clusters "
      "lose",
      "§5 motivates the variant precisely for initially-poor clusterings",
      "2 phases: frozen=" + fmt(frozen_ratios[1], 4) +
          " vs migrating=" + fmt(migrating_ratios[1], 4) + "; 4 phases: " +
          fmt(frozen_ratios[2], 4) + " vs " + fmt(migrating_ratios[2], 4),
      migrating_ratios[1] < frozen_ratios[1] &&
          migrating_ratios[2] < frozen_ratios[2]);

  // --- crash-safe two-phase coordinator on a hard regime switch -------------
  //
  // Two communication regimes with one hard switch (generate_phased_locality,
  // phases=2): the monitor ingests regime A, settles into a good clustering,
  // then regime B arrives and the MigrationCoordinator (src/recluster/)
  // migrates the clustering back into shape through its plan→prepare→commit
  // protocol. Query cost is sampled as work ticks (QueryCost, budget 0 =
  // unlimited) over random delivered precedence pairs in four regimes:
  // steady state (end of regime A), after the switch before any migration,
  // mid-migration (after the first commit, coordinator still converging),
  // and after the final commit. Dual-read overhead is the coordinator's own
  // verify-tick meter.
  bench::section("re-clustering (two-phase coordinator, hard regime switch)");
  {
    const Trace phased = generate_phased_locality({.processes = 48,
                                                   .group_size = 6,
                                                   .intra_rate = 0.93,
                                                   .phases = 2,
                                                   .messages_per_phase = 4000,
                                                   .seed = 501});
    MonitorOptions options;
    options.backend = TimestampBackend::kClusterDynamic;
    options.cluster.max_cluster_size = kMaxCs;
    options.cluster.fm_vector_width = 300;
    options.nth_threshold = kThreshold;
    MonitoringEntity monitor(phased.process_count(), options);

    const auto order = phased.delivery_order();
    const std::size_t half = order.size() / 2;
    auto ingest_range = [&](std::size_t from, std::size_t to) {
      for (std::size_t i = from; i < to; ++i)
        monitor.ingest(phased.event(order[i]));
    };

    struct TickSample {
      double p50 = 0.0, p99 = 0.0;
    };
    Prng rng(917);
    auto sample_ticks = [&](std::size_t pairs) {
      auto pick = [&] {
        for (;;) {
          const auto p =
              static_cast<ProcessId>(rng.index(monitor.process_count()));
          const EventIndex n = monitor.delivered_count(p);
          if (n != 0)
            return EventId{p, static_cast<EventIndex>(1 + rng.index(n))};
        }
      };
      std::vector<std::uint64_t> ticks;
      ticks.reserve(pairs);
      for (std::size_t i = 0; i < pairs; ++i) {
        QueryCost cost;  // budget 0 = unlimited; only the meter is read
        (void)monitor.precedes_metered(pick(), pick(), cost);
        ticks.push_back(cost.ticks);
      }
      std::sort(ticks.begin(), ticks.end());
      return TickSample{static_cast<double>(ticks[ticks.size() / 2]),
                        static_cast<double>(ticks[ticks.size() * 99 / 100])};
    };
    constexpr std::size_t kPairs = 512;

    ingest_range(0, half);
    const TickSample steady = sample_ticks(kPairs);

    ingest_range(half, order.size());  // the hard regime switch
    const TickSample post_switch = sample_ticks(kPairs);

    MigrationConfig mconfig;
    mconfig.planner.hysteresis = 0.1;
    mconfig.planner.max_moves = 8;
    mconfig.planner.min_weight = 1.0;
    mconfig.planner.decay_window = 256;
    mconfig.planner.cooldown_epochs = 0;
    mconfig.verify_pairs = 64;
    mconfig.verify_deadline_ticks = 0;
    mconfig.seed = 19;
    MigrationCoordinator coordinator(monitor, mconfig);

    TickSample mid = post_switch;  // overwritten after the first commit
    bool sampled_mid = false;
    for (std::size_t cycle = 0; cycle < 8; ++cycle) {
      if (coordinator.run_cycle() == MigrationOutcome::kNoPlan) break;
      if (!sampled_mid) {
        mid = sample_ticks(kPairs);
        sampled_mid = true;
      }
    }
    const TickSample post = sample_ticks(kPairs);
    const MigrationStats& mstats = coordinator.stats();
    const double ticks_per_check =
        mstats.verify_checks == 0
            ? 0.0
            : static_cast<double>(mstats.verify_ticks) /
                  static_cast<double>(mstats.verify_checks);

    std::cout << "regime,p50_ticks,p99_ticks\n";
    AsciiTable quantiles({"query regime", "p50 ticks", "p99 ticks"});
    const std::pair<const char*, TickSample> regimes[] = {
        {"steady state (regime A)", steady},
        {"post-switch, pre-migration", post_switch},
        {"mid-migration (first commit)", mid},
        {"post-migration (converged)", post},
    };
    for (const auto& [name, s] : regimes) {
      std::printf("%s,%0.0f,%0.0f\n", name, s.p50, s.p99);
      quantiles.add_row({name, fmt(s.p50, 0), fmt(s.p99, 0)});
    }
    quantiles.print(std::cout);

    AsciiTable protocol({"coordinator stat", "value"});
    protocol.add_row({"cycles run", std::to_string(mstats.cycles)});
    protocol.add_row({"migrations committed",
                      std::to_string(mstats.committed)});
    protocol.add_row({"rollbacks", std::to_string(mstats.rolled_back)});
    protocol.add_row({"moves applied", std::to_string(mstats.moves_applied)});
    protocol.add_row({"splits applied",
                      std::to_string(mstats.splits_applied)});
    protocol.add_row({"dual-read checks",
                      std::to_string(mstats.verify_checks)});
    protocol.add_row({"dual-read ticks (total)",
                      std::to_string(mstats.verify_ticks)});
    protocol.add_row({"dual-read ticks / check", fmt(ticks_per_check, 1)});
    protocol.print(std::cout);

    bench::json_metric("recluster_steady_p50_ticks", steady.p50);
    bench::json_metric("recluster_steady_p99_ticks", steady.p99);
    bench::json_metric("recluster_post_switch_p50_ticks", post_switch.p50);
    bench::json_metric("recluster_post_switch_p99_ticks", post_switch.p99);
    bench::json_metric("recluster_mid_migration_p50_ticks", mid.p50);
    bench::json_metric("recluster_mid_migration_p99_ticks", mid.p99);
    bench::json_metric("recluster_post_migration_p50_ticks", post.p50);
    bench::json_metric("recluster_post_migration_p99_ticks", post.p99);
    bench::json_metric("recluster_migrations_committed",
                       static_cast<double>(mstats.committed));
    bench::json_metric("recluster_rollbacks",
                       static_cast<double>(mstats.rolled_back));
    bench::json_metric("recluster_moves_applied",
                       static_cast<double>(mstats.moves_applied));
    bench::json_metric("recluster_dual_read_ticks",
                       static_cast<double>(mstats.verify_ticks));
    bench::json_metric("recluster_dual_read_ticks_per_check",
                       ticks_per_check);

    bench::verdict(
        "the coordinator commits at least one migration after a hard regime "
        "switch",
        "§5 variant 2: migrate 'in the event that ... the clustering "
        "initially selected is a poor one'",
        "committed=" + std::to_string(mstats.committed) +
            " moves=" + std::to_string(mstats.moves_applied),
        mstats.committed >= 1);
    bench::verdict(
        "fault-free migration cycles never roll back",
        "rollback is reserved for divergence, deadlines, and injected "
        "faults (docs/FAULT_MODEL.md §9)",
        "rollbacks=" + std::to_string(mstats.rolled_back) + " over " +
            std::to_string(mstats.cycles) + " cycles",
        mstats.rolled_back == 0);
    bench::verdict(
        "committed migrations do not inflate steady-state query cost",
        "dual-read verify proved answer identity; a migration only changes "
        "what future answers cost",
        "p50 post-switch=" + fmt(post_switch.p50, 0) + " vs post-migration=" +
            fmt(post.p50, 0) + " (steady=" + fmt(steady.p50, 0) + ")",
        post.p50 <= post_switch.p50 * 1.10);
  }
  return ct::bench::bench_finish();
}

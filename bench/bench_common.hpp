// Shared plumbing for the reproduction benches.
//
// Every bench binary is self-contained and runnable with no arguments; it
// prints (a) a header naming the paper artifact it regenerates, (b) a
// machine-readable CSV block, and (c) a human-readable analysis — ASCII
// tables/plots plus explicit paper-vs-measured verdict lines that
// EXPERIMENTS.md quotes.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "eval/analysis.hpp"
#include "eval/experiment.hpp"
#include "model/trace.hpp"
#include "trace/suite.hpp"
#include "util/ascii.hpp"
#include "util/stats.hpp"

namespace ct::bench {

inline void header(const std::string& name, const std::string& artifact,
                   const std::string& description) {
  std::cout << "=====================================================\n"
            << "bench: " << name << "\n"
            << "reproduces: " << artifact << "\n"
            << description << "\n"
            << "=====================================================\n";
}

inline void section(const std::string& title) {
  std::cout << "\n-- " << title << " --\n";
}

/// One paper-vs-measured verdict line (quoted by EXPERIMENTS.md).
inline void verdict(const std::string& claim, const std::string& paper,
                    const std::string& measured, bool holds) {
  std::cout << (holds ? "[SHAPE HOLDS] " : "[SHAPE DIFFERS] ") << claim
            << "\n    paper:    " << paper << "\n    measured: " << measured
            << "\n";
}

struct LoadedSuite {
  std::vector<Trace> traces;
  std::vector<std::string> ids;
  std::vector<TraceFamily> families;
};

/// Generates the frozen 54-computation suite with its ids.
inline LoadedSuite load_suite() {
  LoadedSuite s;
  s.traces = generate_standard_suite(/*parallel=*/true);
  for (const auto& entry : standard_suite()) {
    s.ids.push_back(entry.id);
    s.families.push_back(entry.family);
  }
  return s;
}

/// Prints a set of sweep rows as CSV: trace,family,strategy,maxCS,ratio.
inline void print_sweep_csv(const std::vector<SweepRow>& rows) {
  std::cout << "trace,family,strategy,maxCS,ratio\n";
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.sizes.size(); ++i) {
      std::printf("%s,%s,%s,%zu,%.6f\n", row.trace_id.c_str(),
                  to_string(row.family), row.strategy.c_str(), row.sizes[i],
                  row.ratios[i]);
    }
  }
}

/// Renders sweep rows of ONE computation as a Figure-4/5-style ASCII plot.
inline void plot_rows(const std::string& title,
                      const std::vector<const SweepRow*>& rows) {
  if (rows.empty()) return;
  std::vector<double> x;
  for (const std::size_t s : rows.front()->sizes) {
    x.push_back(static_cast<double>(s));
  }
  AsciiPlot plot(title, "Maximum Cluster Size", "Average Timestamp Ratio", x);
  double peak = 0.0;
  for (const SweepRow* row : rows) {
    for (const double r : row->ratios) peak = std::max(peak, r);
  }
  plot.set_y_range(0.0, std::max(0.6, peak * 1.05));  // paper's y scale
  for (const SweepRow* row : rows) {
    plot.add_series({row->strategy, row->ratios});
  }
  plot.print(std::cout);
}

inline std::string range_to_string(const SizeRange& r) {
  if (r.empty()) return "(none)";
  return "[" + std::to_string(r.lo) + "," + std::to_string(r.hi) + "]";
}

}  // namespace ct::bench

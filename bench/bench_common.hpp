// Shared plumbing for the reproduction benches.
//
// Every bench binary is self-contained and runnable with no arguments; it
// prints (a) a header naming the paper artifact it regenerates, (b) a
// machine-readable CSV block, and (c) a human-readable analysis — ASCII
// tables/plots plus explicit paper-vs-measured verdict lines that
// EXPERIMENTS.md quotes.
//
// Perf harness (docs/PERF.md): every bench additionally accepts
// `--json[=PATH]`. When given, bench_finish() writes a flat
// BENCH_<name>.json with every json_metric() recorded during the run plus
// the verdict tally, so CI can diff runs against checked-in baselines
// (bench/baselines/). Without the flag the sink is inert and the bench
// output is unchanged.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "eval/analysis.hpp"
#include "eval/experiment.hpp"
#include "model/trace.hpp"
#include "trace/suite.hpp"
#include "util/ascii.hpp"
#include "util/stats.hpp"

namespace ct::bench {

/// Process-wide metric sink behind `--json`. Flat on purpose: a BENCH json
/// is a dictionary of doubles, nothing nested, so the perf-smoke checker can
/// parse it without a JSON library.
struct JsonSink {
  std::string bench_name;
  std::string path;  // empty = disabled
  std::vector<std::pair<std::string, double>> metrics;
  std::size_t verdicts = 0;
  std::size_t verdicts_hold = 0;
};

inline JsonSink& json_sink() {
  static JsonSink sink;
  return sink;
}

/// Parses `--json[=PATH]` (default PATH: BENCH_<name>.json in the working
/// directory). Call first thing in main(); unrelated arguments are ignored.
inline void bench_init(int argc, char** argv, const std::string& name) {
  JsonSink& sink = json_sink();
  sink.bench_name = name;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      sink.path = "BENCH_" + name + ".json";
    } else if (arg.rfind("--json=", 0) == 0) {
      sink.path = arg.substr(7);
    }
  }
}

/// Records one metric for the JSON report (no-op unless --json was given —
/// recording is cheap enough to do unconditionally).
inline void json_metric(const std::string& key, double value) {
  json_sink().metrics.emplace_back(key, value);
}

/// Writes the JSON report if --json was requested. Returns main()'s exit
/// code (non-zero only when the report cannot be written).
inline int bench_finish() {
  JsonSink& sink = json_sink();
  if (sink.path.empty()) return 0;
  std::FILE* f = std::fopen(sink.path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "cannot write " << sink.path << "\n";
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {\n",
               sink.bench_name.c_str());
  std::fprintf(f, "    \"verdicts_total\": %zu,\n", sink.verdicts);
  std::fprintf(f, "    \"verdicts_hold\": %zu", sink.verdicts_hold);
  for (const auto& [key, value] : sink.metrics) {
    std::fprintf(f, ",\n    \"%s\": %.9g", key.c_str(), value);
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  std::cout << "\n[json] wrote " << sink.path << "\n";
  return 0;
}

/// Rewritten argv for a google-benchmark binary: `--json[=PATH]` becomes
/// the library's own JSON reporter flags, everything else passes through.
struct GbenchArgs {
  std::vector<std::string> storage;
  std::vector<char*> argv;
  int argc = 0;
};

inline GbenchArgs gbench_args(int argc, char** argv,
                              const std::string& name) {
  GbenchArgs out;
  out.storage.reserve(2 * static_cast<std::size_t>(argc) + 2);
  out.storage.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string path;
    if (arg == "--json") {
      path = "BENCH_" + name + ".json";
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      out.storage.push_back(arg);
      continue;
    }
    out.storage.push_back("--benchmark_out=" + path);
    out.storage.emplace_back("--benchmark_out_format=json");
  }
  for (std::string& s : out.storage) out.argv.push_back(s.data());
  out.argc = static_cast<int>(out.argv.size());
  return out;
}

inline void header(const std::string& name, const std::string& artifact,
                   const std::string& description) {
  std::cout << "=====================================================\n"
            << "bench: " << name << "\n"
            << "reproduces: " << artifact << "\n"
            << description << "\n"
            << "=====================================================\n";
}

inline void section(const std::string& title) {
  std::cout << "\n-- " << title << " --\n";
}

/// One paper-vs-measured verdict line (quoted by EXPERIMENTS.md).
inline void verdict(const std::string& claim, const std::string& paper,
                    const std::string& measured, bool holds) {
  json_sink().verdicts += 1;
  json_sink().verdicts_hold += holds ? 1 : 0;
  std::cout << (holds ? "[SHAPE HOLDS] " : "[SHAPE DIFFERS] ") << claim
            << "\n    paper:    " << paper << "\n    measured: " << measured
            << "\n";
}

struct LoadedSuite {
  std::vector<Trace> traces;
  std::vector<std::string> ids;
  std::vector<TraceFamily> families;
};

/// Generates the frozen 54-computation suite with its ids.
inline LoadedSuite load_suite() {
  LoadedSuite s;
  s.traces = generate_standard_suite(/*parallel=*/true);
  for (const auto& entry : standard_suite()) {
    s.ids.push_back(entry.id);
    s.families.push_back(entry.family);
  }
  return s;
}

/// Prints a set of sweep rows as CSV: trace,family,strategy,maxCS,ratio.
inline void print_sweep_csv(const std::vector<SweepRow>& rows) {
  std::cout << "trace,family,strategy,maxCS,ratio\n";
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.sizes.size(); ++i) {
      std::printf("%s,%s,%s,%zu,%.6f\n", row.trace_id.c_str(),
                  to_string(row.family), row.strategy.c_str(), row.sizes[i],
                  row.ratios[i]);
    }
  }
}

/// Renders sweep rows of ONE computation as a Figure-4/5-style ASCII plot.
inline void plot_rows(const std::string& title,
                      const std::vector<const SweepRow*>& rows) {
  if (rows.empty()) return;
  std::vector<double> x;
  for (const std::size_t s : rows.front()->sizes) {
    x.push_back(static_cast<double>(s));
  }
  AsciiPlot plot(title, "Maximum Cluster Size", "Average Timestamp Ratio", x);
  double peak = 0.0;
  for (const SweepRow* row : rows) {
    for (const double r : row->ratios) peak = std::max(peak, r);
  }
  plot.set_y_range(0.0, std::max(0.6, peak * 1.05));  // paper's y scale
  for (const SweepRow* row : rows) {
    plot.add_series({row->strategy, row->ratios});
  }
  plot.print(std::cout);
}

inline std::string range_to_string(const SizeRange& r) {
  if (r.empty()) return "(none)";
  // Built up with += to sidestep GCC 12's -Wrestrict false positive on
  // string operator+ chains under -O2 (PR105651).
  std::string out = "[";
  out += std::to_string(r.lo);
  out += ',';
  out += std::to_string(r.hi);
  out += ']';
  return out;
}

}  // namespace ct::bench

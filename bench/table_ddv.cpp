// §2.4 direct-dependency-vector comparison (E10).
//
// Fowler/Zwaenepoel vectors "can be substantially smaller than Fidge/Mattern
// timestamps", but "precedence testing requires a search through the vector
// space, which is in the worst case linear in the number of messages" —
// exactly the wrong trade for an observation tool that answers precedence
// queries constantly. This bench measures both sides on the suite.
#include "bench_common.hpp"
#include "core/engine.hpp"
#include "timestamp/direct_dependency.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  ct::bench::bench_init(argc, argv, "table_ddv");
  using namespace ct;
  bench::header(
      "table_ddv", "§2.4 text — direct-dependency vectors",
      "Storage (words/event) and precedence-query cost (dependency edges\n"
      "traversed) of DDVs vs cluster timestamps, suite subset.");

  const auto suite = bench::load_suite();

  bench::section("csv");
  std::cout << "trace,ddv_words_per_event,fm_words_per_event,"
               "cluster_words_per_event,ddv_edges_per_query,"
               "cluster_comparisons_per_query\n";

  OnlineStats ddv_words, cluster_words, fm_words;
  OnlineStats ddv_edges, cluster_cmps;

  for (std::size_t i = 0; i < suite.traces.size(); ++i) {
    if (i % 3 != 0) continue;  // subset: every third computation
    const Trace& trace = suite.traces[i];
    const double events = static_cast<double>(trace.event_count());

    const DirectDependencyStore ddv(trace);

    ClusterEngineConfig config{.max_cluster_size = 13, .fm_vector_width = 300};
    ClusterTimestampEngine cluster(trace.process_count(), config,
                                   make_merge_on_nth(10));
    cluster.observe_trace(trace);

    constexpr std::size_t kQueries = 150;
    Prng rng(77 + i);
    const auto order = trace.delivery_order();
    for (std::size_t q = 0; q < kQueries; ++q) {
      const EventId e = order[rng.index(order.size())];
      const EventId f = order[rng.index(order.size())];
      const bool a = ddv.precedes(e, f);
      const bool b = cluster.precedes(trace.event(e), trace.event(f));
      CT_CHECK_MSG(a == b, "DDV and cluster disagree on " << e << "," << f);
    }
    const double edges =
        static_cast<double>(ddv.edges_traversed()) / kQueries;
    const double cmps =
        static_cast<double>(cluster.comparisons()) / kQueries;
    const double dw = static_cast<double>(ddv.stored_words()) / events;
    const double cw =
        static_cast<double>(cluster.stats().encoded_words) / events;

    std::printf("%s,%.2f,%zu,%.2f,%.1f,%.2f\n", suite.ids[i].c_str(), dw,
                std::size_t{300}, cw, edges, cmps);
    ddv_words.add(dw);
    fm_words.add(300.0);
    cluster_words.add(cw);
    ddv_edges.add(edges);
    cluster_cmps.add(cmps);
  }

  bench::section("summary");
  AsciiTable table({"scheme", "words/event (mean)", "query cost (mean)"});
  table.add_row({"Fidge/Mattern (width 300)", "300", "1 comparison"});
  table.add_row({"direct-dependency vectors", fmt(ddv_words.mean(), 1),
                 fmt(ddv_edges.mean(), 1) + " edges"});
  table.add_row({"cluster timestamps (Nth>10)", fmt(cluster_words.mean(), 1),
                 fmt(cluster_cmps.mean(), 2) + " comparisons"});
  table.print(std::cout);

  bench::section("analysis");
  bench::verdict(
      "DDVs are much smaller than FM timestamps",
      "'these vectors can be substantially smaller than Fidge/Mattern "
      "timestamps'",
      fmt(ddv_words.mean(), 1) + " vs 300 words/event",
      ddv_words.mean() * 10 < 300);
  bench::verdict(
      "but DDV precedence queries cost a graph search",
      "'precedence testing requires a search ... in the worst case linear "
      "in the number of messages'",
      fmt(ddv_edges.mean(), 0) + " edges/query vs " +
          fmt(cluster_cmps.mean(), 2) + " comparisons for cluster timestamps",
      ddv_edges.mean() > 20 * cluster_cmps.mean());
  return ct::bench::bench_finish();
}

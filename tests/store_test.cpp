// Out-of-core columnar snapshot store tests (docs/FAULT_MODEL.md §10): CTC1
// encode/parse roundtrips, mapped-view answer identity against the live
// engine, the atomic-rename publication protocol under stale-rename crashes,
// the recovery ladder's rung-by-rung behavior and rejection accounting
// across clustering strategies, exhaustive footer bit-flip detection, the
// seeded whole-image corruption fuzz, and the columnar crash-sweep smoke.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "durability/recovery.hpp"
#include "durability/storage.hpp"
#include "durability/wal.hpp"
#include "model/event.hpp"
#include "monitor/monitor.hpp"
#include "simcheck/crash_sweep.hpp"
#include "simcheck/generator.hpp"
#include "simcheck/schedule.hpp"
#include "store/format.hpp"
#include "store/mapped_view.hpp"
#include "store/recovery_ladder.hpp"
#include "store/snapshot_store.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

Event make(ProcessId p, EventIndex i, EventKind k,
           EventId partner = kNoEvent) {
  Event e;
  e.id = EventId{p, i};
  e.kind = k;
  e.partner = partner;
  return e;
}

/// A small causally ordered stream: rounds of unary events with a
/// send/receive between neighbors each round.
std::vector<Event> small_stream(std::size_t n, std::size_t rounds) {
  std::vector<Event> out;
  std::vector<EventIndex> next(n, 1);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (ProcessId p = 0; p < n; ++p) {
      out.push_back(make(p, next[p]++, EventKind::kUnary));
    }
    const ProcessId a = static_cast<ProcessId>(r % n);
    const ProcessId b = static_cast<ProcessId>((r + 1) % n);
    const EventIndex ai = next[a]++;
    const EventIndex bi = next[b]++;
    out.push_back(make(a, ai, EventKind::kSend, EventId{b, bi}));
    out.push_back(make(b, bi, EventKind::kReceive, EventId{a, ai}));
  }
  return out;
}

struct Strategy {
  const char* name;
  MonitorOptions options;
};

/// The four clustering strategies every durability property must hold for.
std::vector<Strategy> strategies(std::size_t process_count) {
  MonitorOptions base;
  base.backend = TimestampBackend::kClusterDynamic;
  base.cluster.max_cluster_size = 4;
  base.cluster.fm_vector_width = process_count;
  std::vector<Strategy> out;
  MonitorOptions fm;
  fm.backend = TimestampBackend::kPrecomputedFm;
  fm.cluster.fm_vector_width = process_count;
  out.push_back({"precomputed-fm", fm});
  MonitorOptions first = base;
  first.nth_threshold = -1.0;  // merge-on-1st
  out.push_back({"merge-1st", first});
  MonitorOptions nth = base;
  nth.nth_threshold = 4.0;
  out.push_back({"merge-nth/arena", nth});
  MonitorOptions plain = base;
  plain.nth_threshold = 10.0;
  plain.cluster.use_arena = false;
  out.push_back({"merge-nth/plain", plain});
  return out;
}

std::unique_ptr<MonitoringEntity> fed_monitor(const MonitorOptions& options,
                                              std::size_t process_count,
                                              const std::vector<Event>& s) {
  auto monitor = std::make_unique<MonitoringEntity>(process_count, options);
  for (const Event& e : s) monitor->ingest(e);
  return monitor;
}

// ---------------------------------------------------------------------------
// CTC1 format: encode/parse roundtrip
// ---------------------------------------------------------------------------

TEST(ColumnarFormat, RoundTripsManifestAcrossStrategies) {
  const std::vector<Event> stream = small_stream(5, 12);
  for (const Strategy& s : strategies(5)) {
    SCOPED_TRACE(s.name);
    const auto monitor = fed_monitor(s.options, 5, stream);
    const std::string image = encode_columnar(*monitor, 7);
    const ColumnarManifest m = parse_columnar_manifest(image);
    EXPECT_EQ(m.generation, 7u);
    EXPECT_EQ(m.process_count, 5u);
    EXPECT_EQ(m.event_count, monitor->delivery_log().size());
    EXPECT_EQ(m.wal_position, m.event_count);
    EXPECT_EQ(m.state_digest, monitor->state_digest());
    EXPECT_EQ(m.has_arena, monitor->can_export_arena());
    EXPECT_EQ(m.columns.size(),
              m.has_arena ? kColumnarColumnCount : kEventColumnCount);
    EXPECT_NO_THROW(verify_columnar_blocks(image, m));

    MappedSnapshot snap(ColdBytes::from_string(image));
    EXPECT_NO_THROW(snap.verify_structure());
    for (std::uint64_t i = 0; i < m.event_count; ++i) {
      const Event want = *monitor->find(monitor->delivery_log()[i]);
      EXPECT_EQ(snap.event(i), want) << "event " << i;
    }
  }
}

TEST(ColumnarFormat, MappedPrecedenceMatchesTheLiveEngine) {
  const std::vector<Event> stream = small_stream(6, 15);
  MonitorOptions mo = strategies(6)[2].options;  // merge-nth/arena
  const auto monitor = fed_monitor(mo, 6, stream);
  ASSERT_TRUE(monitor->can_export_arena());

  MappedSnapshot snap(
      ColdBytes::from_string(encode_columnar(*monitor, 1)));
  ASSERT_TRUE(snap.has_arena());
  snap.verify_blocks();
  snap.verify_structure();
  const auto log = monitor->delivery_log();
  ASSERT_EQ(snap.event_count(), log.size());
  for (const EventId e : log) {
    EXPECT_EQ(snap.delivered_count(e.process),
              monitor->delivered_count(e.process));
    for (const EventId f : log) {
      const Event ee = *monitor->find(e);
      const Event ef = *monitor->find(f);
      EXPECT_EQ(snap.precedes(ee, ef), monitor->precedes(e, f))
          << e << " ?< " << f;
    }
  }
}

TEST(ColumnarFormat, NamingRoundTripsAndRejectsForeignNames) {
  EXPECT_EQ(columnar_object_name(12), "ctc-12.col");
  EXPECT_EQ(columnar_tmp_name(12, "tenant-3."), "tenant-3.ctc-12.col.tmp");
  EXPECT_EQ(parse_columnar_name("ctc-12.col").value_or(0), 12u);
  EXPECT_EQ(parse_columnar_name("tenant-3.ctc-9.col", "tenant-3.").value_or(0),
            9u);
  EXPECT_FALSE(parse_columnar_name("ctc-12.col.tmp").has_value());
  EXPECT_FALSE(parse_columnar_name("ctc-12.col", "tenant-3.").has_value());
  EXPECT_FALSE(parse_columnar_name("wal-12.log").has_value());
  EXPECT_FALSE(parse_columnar_name("ctc-.col").has_value());
  EXPECT_FALSE(parse_columnar_name("ctc-1x.col").has_value());
  EXPECT_TRUE(is_columnar_tmp_name("ctc-12.col.tmp"));
  EXPECT_FALSE(is_columnar_tmp_name("ctc-12.col"));
}

// ---------------------------------------------------------------------------
// Storage rename + stale-rename crash materialization
// ---------------------------------------------------------------------------

TEST(StorageRename, SimulatedRenameMovesDataAndReplacesTarget) {
  SimulatedStorage sim;
  sim.create("a");
  sim.append("a", "alpha");
  sim.create("b");
  sim.append("b", "beta");
  sim.rename("a", "b");
  EXPECT_FALSE(sim.exists("a"));
  EXPECT_EQ(sim.read("b"), "alpha");
  EXPECT_EQ(sim.rename_points().size(), 1u);
}

TEST(StorageRename, FileStorageRenames) {
  const std::string root =
      ::testing::TempDir() + "ct_store_rename_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  FileStorage files(root);
  files.create("x.tmp");
  files.append("x.tmp", "payload");
  files.sync("x.tmp");
  files.rename("x.tmp", "x");
  files.sync_dir();
  EXPECT_FALSE(files.exists("x.tmp"));
  EXPECT_EQ(files.read("x"), "payload");
  for (const std::string& name : files.list()) files.remove(name);
}

TEST(StorageRename, StaleRenameRevertsAnUnsyncedPublication) {
  SimulatedStorage sim;
  sim.create("g.tmp");
  sim.append("g.tmp", "image");
  sim.sync("g.tmp");
  sim.rename("g.tmp", "g");
  // No sync_dir: the rename is in the volatile directory only.
  {
    const auto img =
        sim.materialize({sim.op_count(), CrashFault::kStaleRename, 3});
    EXPECT_TRUE(img->exists("g.tmp"));
    EXPECT_FALSE(img->exists("g"));
    EXPECT_EQ(img->read("g.tmp"), "image");  // bytes survive, name reverts
  }
  sim.sync_dir();
  {
    const auto img =
        sim.materialize({sim.op_count(), CrashFault::kStaleRename, 3});
    EXPECT_TRUE(img->exists("g"));  // durable rename cannot revert
    EXPECT_FALSE(img->exists("g.tmp"));
  }
}

// ---------------------------------------------------------------------------
// Publication protocol
// ---------------------------------------------------------------------------

TEST(ColumnarPublish, PublishesPrunesAndQuarantinesTmps) {
  const std::vector<Event> stream = small_stream(4, 10);
  const auto monitor = fed_monitor(strategies(4)[2].options, 4, stream);
  SimulatedStorage sim;
  ColumnarPublishOptions copts;
  copts.retain_generations = 2;
  for (std::uint64_t g = 1; g <= 4; ++g) {
    const ColumnarPublishResult r =
        publish_columnar(sim, *monitor, g, copts);
    EXPECT_EQ(r.generation, g);
    EXPECT_EQ(r.object, columnar_object_name(g));
    EXPECT_EQ(r.wal_position, monitor->delivery_log().size());
  }
  const auto gens = list_columnar(sim);
  ASSERT_EQ(gens.size(), 2u);  // retention window
  EXPECT_EQ(gens[0].first, 3u);
  EXPECT_EQ(gens[1].first, 4u);
  EXPECT_TRUE(list_columnar_tmps(sim).empty());

  // A crash mid-publication (before the rename) leaves only a tmp, which
  // the ladder quarantines and the next publication sweeps away.
  sim.create(columnar_tmp_name(9));
  sim.append(columnar_tmp_name(9), "torn half-published image");
  EXPECT_EQ(list_columnar_tmps(sim).size(), 1u);
  const LadderRecovery rec = recover_with_ladder(sim, 4, MonitorOptions{});
  EXPECT_EQ(rec.health.tmp_quarantined, 1u);
  publish_columnar(sim, *monitor, 5, copts);
  EXPECT_TRUE(list_columnar_tmps(sim).empty());
}

// ---------------------------------------------------------------------------
// Recovery ladder: every rung, across strategies, with loud accounting
// ---------------------------------------------------------------------------

struct LadderRig {
  SimulatedStorage sim;
  std::unique_ptr<MonitoringEntity> reference;
  std::uint32_t process_count = 5;
};

/// Feeds `stream` through a WAL-attached monitor, checkpoints + publishes
/// mid-stream and at the end (generations 1 and 2).
LadderRig run_rig(const MonitorOptions& options,
                  const std::vector<Event>& stream) {
  LadderRig rig;
  rig.reference = std::make_unique<MonitoringEntity>(rig.process_count,
                                                     options);
  WalOptions wo;
  wo.policy = SyncPolicy::kEveryN;
  wo.sync_every = 4;
  DurableLog log(rig.sim, wo);
  rig.reference->set_delivery_tap(
      [&log](const Event& e) { log.append(e); });
  for (std::size_t i = 0; i < stream.size(); ++i) {
    rig.reference->ingest(stream[i]);
    if (i == stream.size() / 2) {
      log.checkpoint(*rig.reference);
      publish_columnar(rig.sim, *rig.reference, 1);
    }
  }
  log.sync();
  publish_columnar(rig.sim, *rig.reference, 2);
  rig.reference->set_delivery_tap(nullptr);
  return rig;
}

void expect_identical(const MonitoringEntity& got,
                      const MonitoringEntity& want) {
  EXPECT_EQ(got.state_digest(), want.state_digest());
  const auto glog = got.delivery_log();
  const auto wlog = want.delivery_log();
  ASSERT_EQ(glog.size(), wlog.size());
  EXPECT_TRUE(std::equal(glog.begin(), glog.end(), wlog.begin()));
  // FM-oracle answer identity on sampled pairs.
  Prng prng(99);
  for (std::size_t k = 0; k < 64 && !wlog.empty(); ++k) {
    const EventId e = wlog[prng.index(wlog.size())];
    const EventId f = wlog[prng.index(wlog.size())];
    EXPECT_EQ(got.precedes(e, f), want.precedes(e, f)) << e << " ?< " << f;
  }
}

TEST(RecoveryLadder, EveryRungRecoversIdenticallyAcrossStrategies) {
  const std::vector<Event> stream = small_stream(5, 14);
  for (const Strategy& s : strategies(5)) {
    SCOPED_TRACE(s.name);

    // ---- rung 1: newest columnar generation ----
    LadderRig rig = run_rig(s.options, stream);
    {
      const LadderRecovery rec =
          recover_with_ladder(rig.sim, 5, s.options);
      EXPECT_EQ(rec.rung, RecoveryRung::kMapped) << to_string(rec.rung);
      EXPECT_EQ(rec.generation, 2u);
      EXPECT_EQ(rec.health.total_rejected(), 0u);
      expect_identical(*rec.monitor, *rig.reference);
      // Idempotence: recovering the same image twice is byte-identical.
      const LadderRecovery again =
          recover_with_ladder(rig.sim, 5, s.options);
      EXPECT_EQ(again.rung, rec.rung);
      EXPECT_EQ(again.monitor->state_digest(),
                rec.monitor->state_digest());
    }

    // ---- rung 2: newest generation corrupt → prior generation + tail ----
    {
      const std::string newest = columnar_object_name(2);
      std::string bytes = rig.sim.read(newest);
      bytes[bytes.size() / 2] =
          static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
      rig.sim.remove(newest);
      rig.sim.create(newest);
      rig.sim.append(newest, bytes);
      const LadderRecovery rec =
          recover_with_ladder(rig.sim, 5, s.options);
      EXPECT_EQ(rec.rung, RecoveryRung::kMappedPrior) << to_string(rec.rung);
      EXPECT_EQ(rec.generation, 1u);
      EXPECT_EQ(rec.health.total_rejected(), 1u);
      ASSERT_EQ(rec.health.details.size(), 1u);
      EXPECT_NE(rec.health.details[0].find(newest), std::string::npos);
      expect_identical(*rec.monitor, *rig.reference);
    }

    // ---- rung 3: no columnar generations → CTS1 checkpoint ----
    {
      for (const auto& [gen, name] : list_columnar(rig.sim)) {
        (void)gen;
        rig.sim.remove(name);
      }
      const LadderRecovery rec =
          recover_with_ladder(rig.sim, 5, s.options);
      EXPECT_EQ(rec.rung, RecoveryRung::kSnapshot) << to_string(rec.rung);
      EXPECT_EQ(rec.health.generations_seen, 0u);
      expect_identical(*rec.monitor, *rig.reference);
    }

    // ---- rung 4: no snapshots of either format → full WAL replay ----
    {
      for (const std::string& name : rig.sim.list()) {
        if (wal::parse_snapshot_name(name).has_value()) {
          rig.sim.remove(name);
        }
      }
      const LadderRecovery rec =
          recover_with_ladder(rig.sim, 5, s.options);
      EXPECT_EQ(rec.rung, RecoveryRung::kWalReplay) << to_string(rec.rung);
      expect_identical(*rec.monitor, *rig.reference);
    }

    // ---- rung 5: nothing at all → scratch ----
    {
      SimulatedStorage empty;
      const LadderRecovery rec = recover_with_ladder(empty, 5, s.options);
      EXPECT_EQ(rec.rung, RecoveryRung::kScratch) << to_string(rec.rung);
      EXPECT_EQ(rec.monitor->delivery_log().size(), 0u);
    }
  }
}

TEST(RecoveryLadder, RejectionCausesAreCountedSeparately) {
  const std::vector<Event> stream = small_stream(5, 10);
  const MonitorOptions mo = strategies(5)[2].options;

  // Name mismatch: a generation renamed to impersonate another.
  {
    LadderRig rig = run_rig(mo, stream);
    rig.sim.rename(columnar_object_name(2), columnar_object_name(9));
    const LadderRecovery rec = recover_with_ladder(rig.sim, 5, mo);
    EXPECT_EQ(rec.health.rejected_name_mismatch, 1u);
    // Gen 1 is still usable, but it is not the newest *listed* generation
    // (the impostor is), so it counts as the prior-generation rung.
    EXPECT_EQ(rec.rung, RecoveryRung::kMappedPrior);
    EXPECT_EQ(rec.generation, 1u);
  }

  // Position past the durable log end: the image covers records the WAL of
  // THIS storage never reached (a foreign or mis-copied snapshot).
  {
    LadderRig rig = run_rig(mo, stream);
    const std::string image = rig.sim.read(columnar_object_name(2));
    SimulatedStorage other;
    WalOptions wo;
    DurableLog log(other, wo);
    MonitoringEntity shortmon(5, mo);
    shortmon.set_delivery_tap([&log](const Event& e) { log.append(e); });
    for (std::size_t i = 0; i < 6; ++i) shortmon.ingest(stream[i]);
    log.sync();
    other.create(columnar_object_name(2));
    other.append(columnar_object_name(2), image);
    const LadderRecovery rec = recover_with_ladder(other, 5, mo);
    EXPECT_EQ(rec.health.rejected_position, 1u);
    EXPECT_NE(rec.rung, RecoveryRung::kMapped);
    ASSERT_EQ(rec.health.details.size(), 1u);
    EXPECT_NE(rec.health.details[0].find("past the durable log end"),
              std::string::npos);
  }

  // Checksum: a flipped byte inside a column is caught by the block CRCs
  // and tagged with its byte offset.
  {
    LadderRig rig = run_rig(mo, stream);
    const std::string name = columnar_object_name(2);
    std::string bytes = rig.sim.read(name);
    const ColumnarManifest m = parse_columnar_manifest(bytes);
    const ColumnInfo* pool = m.column(ColumnId::kPool);
    ASSERT_NE(pool, nullptr);
    ASSERT_GT(pool->bytes, 0u);
    const std::size_t victim = static_cast<std::size_t>(pool->offset) + 2;
    bytes[victim] = static_cast<char>(bytes[victim] ^ 1);
    rig.sim.remove(name);
    rig.sim.create(name);
    rig.sim.append(name, bytes);
    const LadderRecovery rec = recover_with_ladder(rig.sim, 5, mo);
    EXPECT_EQ(rec.health.rejected_checksum, 1u);
    EXPECT_EQ(rec.health.rejected_structural, 0u);
    EXPECT_EQ(rec.rung, RecoveryRung::kMappedPrior);
    ASSERT_EQ(rec.health.details.size(), 1u);
    EXPECT_NE(rec.health.details[0].find("byte offset"), std::string::npos);
  }
}

TEST(Recovery, WalGapAttestationAcceptsSnapshotAtPrunedLogHead) {
  // After checkpoint pruning, the newest segment may be empty: its header's
  // first_record_seq attests the log reached the snapshot position, so the
  // snapshot must NOT be rejected for a position gap.
  const std::vector<Event> stream = small_stream(4, 12);
  const MonitorOptions mo = strategies(4)[2].options;
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kEveryRecord;
  wo.segment_bytes = 512;  // force rotation so pruning has prey
  wo.retain_checkpoints = 1;
  MonitoringEntity monitor(4, mo);
  DurableLog log(sim, wo);
  monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
  for (const Event& e : stream) monitor.ingest(e);
  log.checkpoint(monitor);  // prunes covered segments
  const RecoveredMonitor rec = recover_monitor(sim, 4, mo);
  EXPECT_EQ(rec.report.snapshots_rejected_position, 0u);
  EXPECT_FALSE(rec.report.snapshot_object.empty());
  EXPECT_EQ(rec.monitor->state_digest(), monitor.state_digest());
  // The cause counters partition the total.
  EXPECT_EQ(rec.report.snapshots_rejected,
            rec.report.snapshots_rejected_structural +
                rec.report.snapshots_rejected_position);
}

// ---------------------------------------------------------------------------
// Corruption detection: exhaustive footer flips + seeded whole-image fuzz
// ---------------------------------------------------------------------------

/// Detected = some verification tier throws; the full tier stack a ladder
/// rung runs before trusting an image.
bool detects(const std::string& image) {
  try {
    MappedSnapshot snap(ColdBytes::from_string(image));
    snap.verify_blocks();
    snap.verify_digests();
    snap.verify_structure();
    return false;
  } catch (const CheckFailure&) {
    return true;
  }
}

TEST(ColumnarCorruption, EveryFooterByteFlipIsDetected) {
  const std::vector<Event> stream = small_stream(4, 8);
  const auto monitor = fed_monitor(strategies(4)[2].options, 4, stream);
  const std::string image = encode_columnar(*monitor, 3);
  const ColumnarManifest m = parse_columnar_manifest(image);
  // Every byte of the footer manifest AND the 16-byte trailer.
  for (std::size_t at = static_cast<std::size_t>(m.footer_offset);
       at < image.size(); ++at) {
    for (const unsigned mask : {0x01u, 0x80u}) {
      std::string flipped = image;
      flipped[at] = static_cast<char>(
          static_cast<unsigned char>(flipped[at]) ^ mask);
      EXPECT_TRUE(detects(flipped))
          << "undetected flip of footer byte " << at << " mask " << mask;
    }
  }
}

TEST(ColumnarCorruption, EveryBlockCrcCoversItsBlock) {
  const std::vector<Event> stream = small_stream(4, 8);
  const auto monitor = fed_monitor(strategies(4)[2].options, 4, stream);
  const std::string image = encode_columnar(*monitor, 3, /*block_bytes=*/64);
  const ColumnarManifest m = parse_columnar_manifest(image);
  // One flip inside every CRC block of every column must be detected.
  for (const ColumnInfo& c : m.columns) {
    for (std::size_t b = 0; b < c.block_crcs.size(); ++b) {
      const std::size_t at = static_cast<std::size_t>(c.offset) + b * 64;
      std::string flipped = image;
      flipped[at] = static_cast<char>(
          static_cast<unsigned char>(flipped[at]) ^ 0x10);
      EXPECT_TRUE(detects(flipped))
          << "undetected flip in " << to_string(c.id) << " block " << b;
    }
  }
}

TEST(ColumnarCorruption, SeededFuzzEveryFlipDetectedOrAnswerIdentical) {
  const std::vector<Event> stream = small_stream(5, 10);
  const auto monitor = fed_monitor(strategies(5)[2].options, 5, stream);
  const std::string image = encode_columnar(*monitor, 1, /*block_bytes=*/256);
  const std::uint64_t want_digest = monitor->state_digest();

  Prng prng(20260809);
  std::size_t detected = 0;
  for (int round = 0; round < 300; ++round) {
    std::string fuzzed = image;
    const std::size_t at = prng.index(fuzzed.size());
    fuzzed[at] = static_cast<char>(static_cast<unsigned char>(fuzzed[at]) ^
                                   (1u << prng.index(8)));
    try {
      MappedSnapshot snap(ColdBytes::from_string(fuzzed));
      snap.verify_blocks();
      snap.verify_digests();
      snap.verify_structure();
      // Undetected: the flip must be semantically inert (alignment
      // padding). The restored state must be bit-identical.
      ASSERT_EQ(snap.manifest().state_digest, want_digest)
          << "round " << round << " byte " << at;
      const LadderRecovery check = [&] {
        SimulatedStorage sim;
        sim.create(columnar_object_name(1));
        sim.append(columnar_object_name(1), fuzzed);
        return recover_with_ladder(sim, 5, MonitorOptions{});
      }();
      ASSERT_EQ(check.rung, RecoveryRung::kMapped)
          << "round " << round << " byte " << at;
      ASSERT_EQ(check.monitor->state_digest(), want_digest)
          << "round " << round << " byte " << at;
    } catch (const CheckFailure&) {
      ++detected;  // loudly rejected: exactly what the ladder would do
    }
  }
  // Nearly every byte is checksummed; only pad bytes may slip through
  // (and those proved answer-identical above).
  EXPECT_GT(detected, 250u);
}

// ---------------------------------------------------------------------------
// Columnar crash-sweep smoke
// ---------------------------------------------------------------------------

TEST(ColumnarSweep, GeneratedSchedulesRecoverOnMappedRungs) {
  CrashSweepParams params;
  params.policy = SyncPolicy::kEveryN;
  params.sync_every = 8;
  params.torn_samples = 8;
  params.short_samples = 4;
  params.rot_samples = 2;
  params.stale_samples = 1;
  params.stale_rename_samples = 3;
  params.mapped_rot_samples = 3;
  for (const std::uint64_t seed : {11ull, 29ull}) {
    const SimSchedule schedule = generate_schedule(seed);
    const CrashSweepReport report = run_crash_sweep(schedule, params);
    ASSERT_TRUE(report.ok())
        << "seed " << seed << " cut " << report.divergence->op_index << " ["
        << report.divergence->config << "]: " << report.divergence->detail;
    EXPECT_GT(report.generations_published, 0u);
    EXPECT_GT(report.ladder_mapped, 0u);
    EXPECT_EQ(report.ladder_mapped + report.ladder_snapshot +
                  report.ladder_wal,
              report.crash_points);
  }
}

TEST(ColumnarSweep, TurningTheStoreOffRestoresTheLegacySweep) {
  CrashSweepParams params;
  params.columnar_store = false;
  const SimSchedule schedule = generate_schedule(13);
  const CrashSweepReport report = run_crash_sweep(schedule, params);
  ASSERT_TRUE(report.ok())
      << report.divergence->config << ": " << report.divergence->detail;
  EXPECT_EQ(report.generations_published, 0u);
  EXPECT_EQ(report.ladder_mapped, 0u);
}

// ---------------------------------------------------------------------------
// Mapped cold path on real files
// ---------------------------------------------------------------------------

TEST(MappedView, FileStorageServesQueriesThroughMmap) {
  const std::vector<Event> stream = small_stream(5, 10);
  const auto monitor = fed_monitor(strategies(5)[2].options, 5, stream);
  const std::string root =
      ::testing::TempDir() + "ct_store_mmap_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  FileStorage files(root);
  publish_columnar(files, *monitor, 4);

  ColdBytes cold = read_cold(files, columnar_object_name(4));
  EXPECT_TRUE(cold.mapped());
  MappedSnapshot snap(std::move(cold));
  snap.verify_blocks();
  snap.verify_structure();
  const auto log = monitor->delivery_log();
  Prng prng(5);
  for (std::size_t k = 0; k < 200; ++k) {
    const EventId e = log[prng.index(log.size())];
    const EventId f = log[prng.index(log.size())];
    EXPECT_EQ(snap.precedes(*monitor->find(e), *monitor->find(f)),
              monitor->precedes(e, f));
  }
  const LadderRecovery rec = recover_with_ladder(files, 5, MonitorOptions{});
  EXPECT_EQ(rec.rung, RecoveryRung::kMapped);
  EXPECT_EQ(rec.monitor->state_digest(), monitor->state_digest());
  for (const std::string& name : files.list()) files.remove(name);
}

}  // namespace
}  // namespace ct

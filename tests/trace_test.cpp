// Tests for ct_trace: generator invariants, the frozen 54-computation suite,
// and trace-file round-tripping.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "model/oracle.hpp"
#include "trace/generators.hpp"
#include "trace/suite.hpp"
#include "trace/trace_io.hpp"
#include "util/check.hpp"

namespace ct {
namespace {

void expect_structurally_valid(const Trace& t) {
  ASSERT_GT(t.process_count(), 0u);
  ASSERT_GT(t.event_count(), 0u);

  // Delivery order: a permutation of all events, per-process ascending,
  // receives after their sends, sync halves adjacent.
  std::vector<EventIndex> seen(t.process_count(), 0);
  std::size_t total = 0;
  const auto order = t.delivery_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    const EventId id = order[i];
    ASSERT_EQ(id.index, seen[id.process] + 1) << "at position " << i;
    seen[id.process] = id.index;
    ++total;
    const Event& e = t.event(id);
    EXPECT_EQ(e.id, id);
    if (e.kind == EventKind::kReceive) {
      EXPECT_LE(e.partner.index, seen[e.partner.process])
          << "receive " << id << " before its send";
      EXPECT_EQ(t.event(e.partner).kind, EventKind::kSend);
      EXPECT_EQ(t.event(e.partner).partner, id);
    }
    if (e.kind == EventKind::kSync) {
      EXPECT_NE(e.partner.process, id.process);
      EXPECT_EQ(t.event(e.partner).kind, EventKind::kSync);
      EXPECT_EQ(t.event(e.partner).partner, id);
      // Adjacency: the partner is immediately before or after.
      const bool before = i > 0 && order[i - 1] == e.partner;
      const bool after = i + 1 < order.size() && order[i + 1] == e.partner;
      EXPECT_TRUE(before || after) << "sync halves not adjacent at " << id;
    }
  }
  std::size_t by_process = 0;
  for (ProcessId p = 0; p < t.process_count(); ++p) {
    by_process += t.process_size(p);
  }
  EXPECT_EQ(total, by_process);
}

TEST(Generators, RingShape) {
  const Trace t = generate_ring({.processes = 8, .iterations = 5, .seed = 1});
  expect_structurally_valid(t);
  EXPECT_EQ(t.process_count(), 8u);
  EXPECT_EQ(t.count(EventKind::kSend), 40u);
  EXPECT_EQ(t.count(EventKind::kReceive), 40u);
  EXPECT_EQ(t.family(), TraceFamily::kPvm);
}

TEST(Generators, Halo1dNeighboursOnly) {
  const Trace t =
      generate_halo1d({.processes = 10, .iterations = 4, .seed = 2});
  expect_structurally_valid(t);
  for (ProcessId p = 0; p < 10; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind != EventKind::kReceive) continue;
      const auto diff = e.partner.process > p ? e.partner.process - p
                                              : p - e.partner.process;
      EXPECT_EQ(diff, 1u) << "non-neighbour receive at " << e.id;
    }
  }
}

TEST(Generators, Halo2dFourNeighbours) {
  const Trace t =
      generate_halo2d({.width = 4, .height = 3, .iterations = 3, .seed = 3});
  expect_structurally_valid(t);
  EXPECT_EQ(t.process_count(), 12u);
  for (ProcessId p = 0; p < 12; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind != EventKind::kReceive) continue;
      const ProcessId q = e.partner.process;
      const auto px = p % 4, py = p / 4, qx = q % 4, qy = q / 4;
      const auto manhattan = (px > qx ? px - qx : qx - px) +
                             (py > qy ? py - qy : qy - py);
      EXPECT_EQ(manhattan, 1u);
    }
  }
}

TEST(Generators, ScatterGatherStar) {
  const Trace t =
      generate_scatter_gather({.processes = 9, .rounds = 4, .seed = 4});
  expect_structurally_valid(t);
  // All communication involves the master (process 0).
  for (ProcessId p = 1; p < 9; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind == EventKind::kReceive) {
        EXPECT_EQ(e.partner.process, 0u);
      }
    }
  }
}

TEST(Generators, ReductionTreeParentChild) {
  const Trace t =
      generate_reduction_tree({.processes = 15, .rounds = 3, .seed = 5});
  expect_structurally_valid(t);
  for (ProcessId p = 0; p < 15; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind != EventKind::kReceive) continue;
      const ProcessId q = e.partner.process;
      const bool parent_child =
          (p > 0 && (p - 1) / 2 == q) || (q > 0 && (q - 1) / 2 == p);
      EXPECT_TRUE(parent_child) << p << " <- " << q;
    }
  }
}

TEST(Generators, PipelineFlowsDownstream) {
  const Trace t = generate_pipeline({.stages = 6, .items = 10, .seed = 6});
  expect_structurally_valid(t);
  for (ProcessId p = 0; p < 6; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind == EventKind::kReceive) {
        EXPECT_EQ(e.partner.process + 1, p);
      }
    }
  }
  // Every item reaches the last stage.
  EXPECT_EQ(t.process_size(5), 10u * 2);  // receive + compute each
}

TEST(Generators, WavefrontNorthWestDependencies) {
  const Trace t =
      generate_wavefront({.width = 4, .height = 4, .sweeps = 2, .seed = 7});
  expect_structurally_valid(t);
  for (ProcessId p = 0; p < 16; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind != EventKind::kReceive) continue;
      const ProcessId q = e.partner.process;
      EXPECT_TRUE(q + 1 == p || q + 4 == p)
          << "receive from non-north/west neighbour";
    }
  }
}

TEST(Generators, MasterWorkerCompletesAllTasks) {
  const Trace t =
      generate_master_worker({.processes = 8, .tasks = 50, .seed = 8});
  expect_structurally_valid(t);
  // Master sends 50 tasks and receives 50 results.
  std::size_t master_sends = 0, master_receives = 0;
  for (const Event& e : t.process_events(0)) {
    master_sends += e.kind == EventKind::kSend;
    master_receives += e.kind == EventKind::kReceive;
  }
  EXPECT_EQ(master_sends, 50u);
  EXPECT_EQ(master_receives, 50u);
}

TEST(Generators, WebServerRolesRespected) {
  const WebServerOptions opt{.clients = 10,
                             .servers = 3,
                             .backends = 2,
                             .requests = 80,
                             .seed = 9};
  const Trace t = generate_web_server(opt);
  expect_structurally_valid(t);
  EXPECT_EQ(t.process_count(), 15u);
  EXPECT_EQ(t.family(), TraceFamily::kJava);
  // Clients only talk to servers; backends only to servers.
  for (ProcessId p = 0; p < 10; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind == EventKind::kReceive) {
        EXPECT_GE(e.partner.process, 10u);
        EXPECT_LT(e.partner.process, 13u);
      }
    }
  }
  for (ProcessId p = 13; p < 15; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind == EventKind::kReceive) {
        EXPECT_GE(e.partner.process, 10u);
        EXPECT_LT(e.partner.process, 13u);
      }
    }
  }
}

TEST(Generators, TieredServiceLayering) {
  const Trace t = generate_tiered_service({.clients = 8,
                                           .frontends = 3,
                                           .app_servers = 4,
                                           .databases = 2,
                                           .requests = 60,
                                           .seed = 10});
  expect_structurally_valid(t);
  EXPECT_EQ(t.process_count(), 17u);
  // Databases (13..16) receive only from app servers (11..14)… layer check:
  for (ProcessId p = 15; p < 17; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind == EventKind::kReceive) {
        EXPECT_GE(e.partner.process, 11u);
        EXPECT_LT(e.partner.process, 15u);
      }
    }
  }
}

TEST(Generators, PubSubFanout) {
  const Trace t = generate_pubsub({.publishers = 4,
                                   .brokers = 2,
                                   .subscribers = 9,
                                   .topics = 3,
                                   .subscribers_per_topic = 4,
                                   .messages = 30,
                                   .seed = 11});
  expect_structurally_valid(t);
  // Each post fans out to exactly 4 subscribers: broker sends = 4 × posts.
  std::size_t broker_sends = 0, broker_receives = 0;
  for (ProcessId p = 4; p < 6; ++p) {
    for (const Event& e : t.process_events(p)) {
      broker_sends += e.kind == EventKind::kSend;
      broker_receives += e.kind == EventKind::kReceive;
    }
  }
  EXPECT_EQ(broker_receives, 30u);
  EXPECT_EQ(broker_sends, 120u);
}

TEST(Generators, RpcBusinessIsAllSync) {
  const Trace t = generate_rpc_business({.groups = 2,
                                         .clients_per_group = 2,
                                         .servers_per_group = 2,
                                         .calls = 40,
                                         .seed = 12});
  expect_structurally_valid(t);
  EXPECT_EQ(t.family(), TraceFamily::kDce);
  EXPECT_EQ(t.count(EventKind::kSend), 0u);
  EXPECT_EQ(t.count(EventKind::kReceive), 0u);
  EXPECT_GT(t.count(EventKind::kSync), 0u);
  EXPECT_EQ(t.count(EventKind::kSync) % 2, 0u);
}

TEST(Generators, RpcChainTraversesConsecutiveServices) {
  const Trace t = generate_rpc_chain(
      {.services = 8, .chain_length = 3, .requests = 15, .seed = 13});
  expect_structurally_valid(t);
  for (ProcessId p = 0; p < 8; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind != EventKind::kSync) continue;
      const ProcessId q = e.partner.process;
      const auto forward = (p + 1) % 8 == q || (q + 1) % 8 == p;
      EXPECT_TRUE(forward) << p << " <-> " << q;
    }
  }
}

TEST(Generators, UniformRandomHasNoSelfMessages) {
  const Trace t =
      generate_uniform_random({.processes = 10, .messages = 200, .seed = 14});
  expect_structurally_valid(t);
  for (ProcessId p = 0; p < 10; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind == EventKind::kReceive) {
        EXPECT_NE(e.partner.process, p);
      }
    }
  }
}

TEST(Generators, LocalityRandomMostlyIntraGroup) {
  const Trace t = generate_locality_random({.processes = 24,
                                            .group_size = 6,
                                            .intra_rate = 0.9,
                                            .messages = 1000,
                                            .seed = 15});
  expect_structurally_valid(t);
  std::size_t intra = 0, inter = 0;
  for (ProcessId p = 0; p < 24; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind != EventKind::kReceive) continue;
      (p / 6 == e.partner.process / 6 ? intra : inter) += 1;
    }
  }
  EXPECT_GT(intra, inter * 4) << intra << " intra vs " << inter << " inter";
}

TEST(Generators, DeterministicGivenSeed) {
  const auto opts = WebServerOptions{.clients = 10,
                                     .servers = 3,
                                     .backends = 2,
                                     .requests = 50,
                                     .seed = 77};
  const Trace a = generate_web_server(opts);
  const Trace b = generate_web_server(opts);
  ASSERT_EQ(a.event_count(), b.event_count());
  const auto ao = a.delivery_order();
  const auto bo = b.delivery_order();
  for (std::size_t i = 0; i < ao.size(); ++i) {
    ASSERT_EQ(ao[i], bo[i]);
    ASSERT_EQ(a.event(ao[i]), b.event(bo[i]));
  }
}

TEST(Generators, DifferentSeedsDiffer) {
  auto opts = UniformRandomOptions{.processes = 10, .messages = 100};
  opts.seed = 1;
  const Trace a = generate_uniform_random(opts);
  opts.seed = 2;
  const Trace b = generate_uniform_random(opts);
  bool differs = a.event_count() != b.event_count();
  if (!differs) {
    const auto ao = a.delivery_order();
    for (std::size_t i = 0; i < ao.size() && !differs; ++i) {
      differs = a.event(ao[i]) != b.event(ao[i]);
    }
  }
  EXPECT_TRUE(differs);
}

// ----------------------------------------------------------------- the suite

TEST(Suite, HasAtLeastFiftyComputationsAcrossThreeFamilies) {
  const auto& suite = standard_suite();
  EXPECT_GE(suite.size(), 50u);
  std::set<std::string> ids;
  std::size_t pvm = 0, java = 0, dce = 0, control = 0;
  for (const auto& entry : suite) {
    EXPECT_TRUE(ids.insert(entry.id).second) << "duplicate id " << entry.id;
    switch (entry.family) {
      case TraceFamily::kPvm:
        ++pvm;
        break;
      case TraceFamily::kJava:
        ++java;
        break;
      case TraceFamily::kDce:
        ++dce;
        break;
      case TraceFamily::kControl:
        ++control;
        break;
    }
  }
  EXPECT_GE(pvm, 10u);
  EXPECT_GE(java, 10u);
  EXPECT_GE(dce, 6u);
  EXPECT_GE(control, 4u);
}

TEST(Suite, AllEntriesGenerateValidTracesUpTo300Processes) {
  const auto traces = generate_standard_suite(/*parallel=*/true);
  ASSERT_EQ(traces.size(), standard_suite().size());
  std::size_t max_procs = 0;
  for (const auto& t : traces) {
    expect_structurally_valid(t);
    EXPECT_LE(t.process_count(), 300u);
    max_procs = std::max(max_procs, t.process_count());
  }
  EXPECT_EQ(max_procs, 300u) << "suite should reach the paper's 300";
}

TEST(Suite, FigureSamplesAreStable) {
  const Trace upper = figure_sample_upper();
  const Trace lower = figure_sample_lower();
  expect_structurally_valid(upper);
  expect_structurally_valid(lower);
  EXPECT_NE(upper.name(), lower.name());
}

// -------------------------------------------------------------------- file IO

void expect_traces_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.family(), b.family());
  ASSERT_EQ(a.process_count(), b.process_count());
  ASSERT_EQ(a.event_count(), b.event_count());
  const auto ao = a.delivery_order();
  const auto bo = b.delivery_order();
  for (std::size_t i = 0; i < ao.size(); ++i) {
    ASSERT_EQ(ao[i], bo[i]) << "delivery position " << i;
    ASSERT_EQ(a.event(ao[i]), b.event(bo[i]));
  }
}

TEST(TraceIo, RoundTripsAsyncTrace) {
  const Trace t =
      generate_web_server({.clients = 6, .servers = 2, .backends = 1,
                           .requests = 30, .seed = 21});
  std::stringstream buffer;
  write_trace(buffer, t);
  expect_traces_equal(t, read_trace(buffer));
}

TEST(TraceIo, RoundTripsSyncTrace) {
  const Trace t = generate_rpc_business({.groups = 2,
                                         .clients_per_group = 2,
                                         .servers_per_group = 2,
                                         .calls = 25,
                                         .seed = 22});
  std::stringstream buffer;
  write_trace(buffer, t);
  expect_traces_equal(t, read_trace(buffer));
}

TEST(TraceIo, RoundTripPreservesCausality) {
  const Trace t = generate_locality_random(
      {.processes = 12, .group_size = 4, .messages = 80, .seed = 23});
  std::stringstream buffer;
  write_trace(buffer, t);
  const Trace back = read_trace(buffer);
  const CausalityOracle oa(t), ob(back);
  for (const EventId e : t.delivery_order()) {
    for (const EventId f : t.delivery_order()) {
      ASSERT_EQ(oa.happened_before(e, f), ob.happened_before(e, f));
    }
  }
}

TEST(TraceIo, RejectsMalformedInput) {
  const auto reject = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(read_trace(in), CheckFailure) << text;
  };
  reject("");                                            // no header
  reject("trace t control\nprocesses 1\nu 0\n");         // missing end
  reject("trace t control\nprocesses 1\nu 5\nend 1\n");  // bad process
  reject("trace t control\nprocesses 2\nr 1 0 1\nend 1\n");  // orphan recv
  reject("trace t control\nprocesses 1\nu 0\nend 7\n");  // wrong count
  reject("trace t control\nprocesses 1\nzz 0\nend 0\n");  // unknown tag
  reject("trace t bogus-family\nprocesses 1\nu 0\nend 1\n");
  reject("trace t control\nprocesses 2\ny 0 0\nend 2\n");  // self-sync
}

TEST(TraceIo, FileRoundTrip) {
  const Trace t = generate_ring({.processes = 5, .iterations = 3, .seed = 24});
  const std::string path = ::testing::TempDir() + "/ct_ring.trace";
  save_trace(path, t);
  expect_traces_equal(t, load_trace(path));
  EXPECT_THROW(load_trace(path + ".missing"), CheckFailure);
}

}  // namespace
}  // namespace ct

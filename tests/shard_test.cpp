// Tests for the sharded multi-tenant router: replica fan-out, per-cluster
// ownership, retry/backoff + hedged re-issue, tenant bulkheads (quota +
// breaker), shard-level fault injection, and the sharded-vs-single-shard
// answer-identity check (docs/FAULT_MODEL.md §8).
#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

#include "durability/recovery.hpp"
#include "durability/storage.hpp"
#include "model/oracle.hpp"
#include "shard/shard_check.hpp"
#include "shard/shard_fault.hpp"
#include "shard/shard_router.hpp"
#include "simcheck/generator.hpp"
#include "trace/generators.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

Trace small_trace() {
  return generate_rpc_business({.groups = 2,
                                .clients_per_group = 2,
                                .servers_per_group = 2,
                                .calls = 40,
                                .seed = 51});
}

TenantConfig small_tenant(const Trace& t, std::size_t shards = 3) {
  TenantConfig tc;
  tc.process_count = t.process_count();
  tc.monitor.backend = TimestampBackend::kClusterDynamic;
  tc.monitor.cluster.max_cluster_size = 4;
  tc.monitor.cluster.fm_vector_width = t.process_count();
  tc.shards = shards;
  return tc;
}

void feed(ShardRouter& router, TenantId t, const Trace& trace) {
  for (const EventId id : trace.delivery_order()) {
    router.ingest(t, trace.event(id));
  }
}

std::vector<EventId> all_events(const Trace& t) {
  return {t.delivery_order().begin(), t.delivery_order().end()};
}

TEST(ShardRouter, AnswersMatchOracleAndOwnershipIsPerCluster) {
  const Trace t = small_trace();
  ShardRouter router;
  const TenantId ten = router.add_tenant(small_tenant(t));
  feed(router, ten, t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  router.open_epoch();
  // Per-cluster ownership: two processes of the same cluster share an
  // owner shard.
  const MonitoringEntity& m = router.shard_monitor(ten, 0);
  for (ProcessId p = 0; p < t.process_count(); ++p) {
    for (ProcessId q = 0; q < t.process_count(); ++q) {
      if (m.cluster_of(p) == m.cluster_of(q)) {
        EXPECT_EQ(router.owner_shard(ten, p), router.owner_shard(ten, q));
      }
    }
  }

  Prng rng(7);
  for (int i = 0; i < 150; ++i) {
    const EventId e = rng.pick(events);
    const EventId f = rng.pick(events);
    const RouterQueryResult r = router.precedence(ten, e, f);
    ASSERT_EQ(r.outcome, RouterOutcome::kAnswered);
    ASSERT_TRUE(r.answer.has_value());
    EXPECT_EQ(*r.answer, oracle.happened_before(e, f));
    EXPECT_EQ(r.shard, router.owner_shard(ten, f.process));
    EXPECT_FALSE(r.retried);
    EXPECT_FALSE(r.hedged);
  }
  router.close_epoch();

  const TenantHealth h = router.tenant_health(ten);
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.answered, 150u);
  EXPECT_EQ(h.degraded + h.unknown + h.shed, 0u);
}

TEST(ShardRouter, DeadOwnerIsHedgedToSiblingExactly) {
  const Trace t = small_trace();
  ShardRouter router;
  const TenantId ten = router.add_tenant(small_tenant(t));
  feed(router, ten, t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  router.open_epoch();
  const EventId f = events.back();
  const ShardId owner = router.owner_shard(ten, f.process);
  router.inject_shard_fault(ten, owner, ShardFault::kDead);

  Prng rng(11);
  int hedged = 0;
  for (int i = 0; i < 60; ++i) {
    const EventId e = rng.pick(events);
    const RouterQueryResult r = router.precedence(ten, e, f);
    // The owner refuses instantly; a sibling replica answers — exact, but
    // flagged degraded.
    ASSERT_TRUE(r.answer.has_value());
    EXPECT_EQ(*r.answer, oracle.happened_before(e, f));
    EXPECT_EQ(r.outcome, RouterOutcome::kDegraded);
    EXPECT_NE(r.shard, owner);
    hedged += r.hedged ? 1 : 0;
  }
  EXPECT_EQ(hedged, 60);
  router.close_epoch();

  const TenantHealth h = router.tenant_health(ten);
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.degraded, 60u);
  EXPECT_GT(h.hedges, 0u);
  const RouterHealth rh = router.health();
  EXPECT_GT(rh.faults.dead_attempts, 0u);
}

TEST(ShardRouter, StalledOwnerBurnsBudgetThenSiblingAnswers) {
  const Trace t = small_trace();
  ShardRouter router;
  const TenantId ten = router.add_tenant(small_tenant(t));
  feed(router, ten, t);
  const auto events = all_events(t);

  router.open_epoch();
  const EventId f = events.back();
  const ShardId owner = router.owner_shard(ten, f.process);
  router.inject_shard_fault(ten, owner, ShardFault::kStalled);

  const std::uint64_t budget = 50'000;
  const RouterQueryResult r =
      router.precedence(ten, events.front(), f, budget);
  // The stalled owner consumed its whole budget (and the backoff-scaled
  // retry budget) producing nothing before a sibling answered.
  ASSERT_TRUE(r.answer.has_value());
  EXPECT_EQ(r.outcome, RouterOutcome::kDegraded);
  EXPECT_TRUE(r.hedged);
  EXPECT_GE(r.cost, budget * (1 + router.options().backoff_factor));
  router.close_epoch();
  EXPECT_GT(router.health().faults.stalled_attempts, 0u);
}

TEST(ShardRouter, SlowShardStillAnswersExactlyAtInflatedCost) {
  const Trace t = small_trace();
  ShardRouter router;
  const TenantId ten = router.add_tenant(small_tenant(t));
  feed(router, ten, t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  router.open_epoch();
  const EventId e = events.front(), f = events.back();
  const RouterQueryResult clean = router.precedence(ten, e, f);
  ASSERT_EQ(clean.outcome, RouterOutcome::kAnswered);

  const ShardId owner = router.owner_shard(ten, f.process);
  router.inject_shard_fault(ten, owner, ShardFault::kSlow);
  const RouterQueryResult slow = router.precedence(ten, e, f);
  ASSERT_TRUE(slow.answer.has_value());
  EXPECT_EQ(*slow.answer, oracle.happened_before(e, f));
  // Unlimited budget: the slow owner still answers on the first attempt
  // (not degraded), but every tick costs slow_factor real ticks.
  EXPECT_EQ(slow.outcome, RouterOutcome::kAnswered);
  EXPECT_GE(slow.cost, clean.cost);
  router.close_epoch();
  EXPECT_GT(router.health().faults.slowed_attempts, 0u);
}

TEST(ShardRouter, CorruptClusterShardServesExactViaFallbacksFlaggedDegraded) {
  const Trace t = small_trace();
  ShardRouter router;
  const TenantId ten = router.add_tenant(small_tenant(t));
  feed(router, ten, t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  router.open_epoch();
  const EventId f = events.back();
  const ShardId owner = router.owner_shard(ten, f.process);
  router.inject_shard_fault(ten, owner, ShardFault::kCorruptCluster);

  Prng rng(13);
  for (int i = 0; i < 60; ++i) {
    const EventId e = rng.pick(events);
    const RouterQueryResult r = router.precedence(ten, e, f);
    // The kill-switch protocol: the corrupt shard's cluster backend is
    // tripped, its fallback chain serves — exact answers, flagged
    // degraded, never wrong.
    ASSERT_TRUE(r.answer.has_value());
    EXPECT_EQ(*r.answer, oracle.happened_before(e, f));
    EXPECT_EQ(r.outcome, RouterOutcome::kDegraded);
    EXPECT_EQ(r.shard, owner);
  }
  router.close_epoch();

  // close_epoch repaired the corruption from the delivery log: the next
  // epoch's coherence check finds nothing to quarantine and the shard is
  // exact-primary again.
  router.open_epoch();
  const RouterQueryResult clean = router.precedence(ten, events.front(), f);
  EXPECT_EQ(clean.outcome, RouterOutcome::kAnswered);
  router.close_epoch();
  EXPECT_EQ(router.tenant_health(ten).divergent_replicas, 0u);
}

TEST(ShardRouter, ExternallyDivergedReplicaIsQuarantinedByDigestCheck) {
  const Trace t = small_trace();
  ShardRouter router;
  const TenantId ten = router.add_tenant(small_tenant(t));
  feed(router, ten, t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  // Corrupt shard 1's replica OUTSIDE any epoch protocol — the coherence
  // check at open_epoch must spot the digest mismatch and bench it.
  router.mutable_shard_monitor(ten, 1).inject_timestamp_corruption(
      events.back(), 0, 0x7777);
  router.open_epoch();
  EXPECT_EQ(router.tenant_health(ten).divergent_replicas, 1u);
  Prng rng(17);
  for (int i = 0; i < 40; ++i) {
    const EventId e = rng.pick(events);
    const EventId f = rng.pick(events);
    const RouterQueryResult r = router.precedence(ten, e, f);
    ASSERT_TRUE(r.answer.has_value());
    EXPECT_EQ(*r.answer, oracle.happened_before(e, f));
    EXPECT_NE(r.shard, 1u);  // the quarantined replica never serves
  }
  router.close_epoch();
  EXPECT_TRUE(router.tenant_health(ten).accounted());
}

TEST(ShardRouter, TenantBreakerTripsOnOwnUnknownsOnlyAndProbesClosed) {
  const Trace t = small_trace();
  ShardRouter router;
  TenantConfig tc = small_tenant(t);
  tc.breaker_failure_threshold = 3;
  tc.breaker_probe_stride = 4;
  const TenantId sick = router.add_tenant(tc);
  const TenantId healthy = router.add_tenant(tc);
  feed(router, sick, t);
  feed(router, healthy, t);
  const auto events = all_events(t);

  router.open_epoch();
  // Kill every replica of the sick tenant: its queries go unknown.
  for (ShardId s = 0; s < 3; ++s) {
    router.inject_shard_fault(sick, s, ShardFault::kDead);
  }
  const EventId e = events.front(), f = events.back();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(router.precedence(sick, e, f).outcome, RouterOutcome::kUnknown);
  }
  EXPECT_FALSE(router.tenant_open(sick));
  EXPECT_EQ(router.tenant_health(sick).breaker_trips, 1u);

  // Open breaker: fast-fail without touching a shard; every 4th submission
  // probes (and stays unknown — the shards are still dead).
  for (int i = 0; i < 8; ++i) {
    const RouterQueryResult r = router.precedence(sick, e, f);
    EXPECT_EQ(r.outcome, RouterOutcome::kUnknown);
  }
  EXPECT_GT(router.tenant_health(sick).breaker_fastfails, 0u);
  EXPECT_FALSE(router.tenant_open(sick));

  // The sibling tenant never notices: its breaker is fed by its own
  // outcomes only (the bulkhead).
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(router.precedence(healthy, e, f).outcome,
              RouterOutcome::kAnswered);
  }
  EXPECT_TRUE(router.tenant_open(healthy));
  router.close_epoch();

  // Next epoch the shards are clean again; the first probe submission
  // closes the breaker.
  router.open_epoch();
  RouterOutcome last = RouterOutcome::kUnknown;
  for (int i = 0; i < 4; ++i) {
    last = router.precedence(sick, e, f).outcome;
  }
  EXPECT_EQ(last, RouterOutcome::kAnswered);
  EXPECT_TRUE(router.tenant_open(sick));
  EXPECT_GE(router.tenant_health(sick).readmissions, 1u);
  router.close_epoch();
  EXPECT_TRUE(router.tenant_health(sick).accounted());
  EXPECT_TRUE(router.tenant_health(healthy).accounted());
}

TEST(ShardRouter, AdmissionQuotaShedsConcurrentOverload) {
  const Trace t = small_trace();
  ShardRouter router;
  TenantConfig tc = small_tenant(t);
  tc.max_in_flight = 1;
  const TenantId ten = router.add_tenant(tc);
  feed(router, ten, t);
  const auto events = all_events(t);

  router.open_epoch();
  // 8 racing callers against a 1-permit quota: overload must shed, never
  // queue unboundedly, and the accounting must absorb every submission.
  std::vector<std::thread> callers;
  for (int c = 0; c < 8; ++c) {
    callers.emplace_back([&, c] {
      Prng rng(static_cast<std::uint64_t>(c) + 1);
      for (int i = 0; i < 200; ++i) {
        const EventId e = rng.pick(events);
        const EventId f = rng.pick(events);
        const RouterQueryResult r = router.precedence(ten, e, f);
        ASSERT_TRUE(r.outcome == RouterOutcome::kAnswered ||
                    r.outcome == RouterOutcome::kShed);
      }
    });
  }
  for (auto& th : callers) th.join();
  router.close_epoch();

  const TenantHealth h = router.tenant_health(ten);
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.submitted, 1600u);
  EXPECT_EQ(h.in_flight, 0u);
  EXPECT_EQ(h.shed, h.quota_rejections);
  EXPECT_GT(h.quota_rejections, 0u);  // 8 threads vs 1 permit must collide
}

TEST(ShardRouter, BatchDegradesPerPairNeverSilentlyWrong) {
  const Trace t = small_trace();
  ShardRouter router;
  const TenantId ten = router.add_tenant(small_tenant(t));
  feed(router, ten, t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  router.open_epoch();
  const ShardId dead = router.owner_shard(ten, events.back().process);
  router.inject_shard_fault(ten, dead, ShardFault::kDead);

  Prng rng(23);
  std::vector<std::pair<EventId, EventId>> pairs;
  for (int i = 0; i < 64; ++i) {
    pairs.emplace_back(rng.pick(events), rng.pick(events));
  }
  const RouterQueryResult r = router.batch(ten, pairs);
  ASSERT_EQ(r.batch.size(), pairs.size());
  ASSERT_EQ(r.batch_outcome.size(), pairs.size());
  bool any_degraded = false;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    // Every pair is answered (siblings are full replicas) and every
    // answer is exact; pairs owned by the dead shard come back flagged.
    ASSERT_TRUE(r.batch[i].has_value()) << "pair " << i;
    EXPECT_EQ(*r.batch[i],
              oracle.happened_before(pairs[i].first, pairs[i].second));
    const ShardId owner = router.owner_shard(ten, pairs[i].second.process);
    if (owner == dead) {
      EXPECT_EQ(r.batch_outcome[i], RouterOutcome::kDegraded);
      any_degraded = true;
    } else {
      EXPECT_EQ(r.batch_outcome[i], RouterOutcome::kAnswered);
    }
  }
  EXPECT_TRUE(any_degraded);
  EXPECT_EQ(r.outcome, RouterOutcome::kDegraded);
  router.close_epoch();

  const TenantHealth h = router.tenant_health(ten);
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.pairs_answered + h.pairs_degraded + h.pairs_unknown, 64u);
  EXPECT_EQ(h.pairs_unknown, 0u);
}

TEST(ShardRouter, FrontiersMatchAcrossDeployments) {
  const Trace t = small_trace();
  ShardRouter sharded;
  const TenantId ten = sharded.add_tenant(small_tenant(t));
  feed(sharded, ten, t);
  ShardRouter single;
  const TenantId solo = single.add_tenant(small_tenant(t, 1));
  feed(single, solo, t);
  const auto events = all_events(t);

  sharded.open_epoch();
  single.open_epoch();
  Prng rng(29);
  for (int i = 0; i < 12; ++i) {
    const EventId e = rng.pick(events);
    const RouterQueryResult a = sharded.frontier(ten, e);
    const RouterQueryResult b = single.frontier(solo, e);
    ASSERT_TRUE(a.frontiers.has_value());
    ASSERT_TRUE(b.frontiers.has_value());
    EXPECT_EQ(a.frontiers->greatest_predecessor,
              b.frontiers->greatest_predecessor);
    EXPECT_EQ(a.frontiers->greatest_concurrent,
              b.frontiers->greatest_concurrent);
  }
  sharded.close_epoch();
  single.close_epoch();
}

TEST(ShardRouter, PerTenantWalNamespacesRecoverIndependently) {
  const Trace t = small_trace();
  SimulatedStorage storage;
  {
    ShardRouter router;
    const TenantId a = router.add_tenant(small_tenant(t, 2));
    const TenantId b = router.add_tenant(small_tenant(t, 2));
    router.attach_wal(a, storage);
    router.attach_wal(b, storage);
    feed(router, a, t);
    feed(router, b, t);
    router.checkpoint_tenant(a);
    router.wal(b)->sync();
  }
  // Both tenants share one StorageBackend; each recovers from its own
  // namespace alone.
  for (TenantId t_id = 0; t_id < 2; ++t_id) {
    MonitorOptions mo;
    mo.cluster.max_cluster_size = 4;
    mo.cluster.fm_vector_width = t.process_count();
    const RecoveredMonitor rec =
        recover_monitor(storage, t.process_count(), mo,
                        wal::tenant_namespace(t_id));
    EXPECT_EQ(rec.monitor->delivery_log().size(),
              t.delivery_order().size());
  }
}

TEST(ShardCheck, FaultFreeShardedDeploymentIsBitIdentical) {
  const SimSchedule schedule = generate_schedule(101);
  ShardCheckOptions options;
  options.shards = 3;
  options.tenants = 2;
  const ShardCheckReport report = run_shard_check(schedule, options);
  EXPECT_TRUE(report.ok()) << report.divergence->detail;
  EXPECT_GT(report.pairs_checked, 0u);
}

TEST(ShardCheck, InjectedFaultsDegradeLoudlyNeverWrong) {
  const SimSchedule schedule = generate_schedule(202);
  ShardCheckOptions options;
  options.shards = 3;
  options.tenants = 1;
  options.faults.seed = 202;
  options.faults.slow_rate = 0.25;
  options.faults.stall_rate = 0.2;
  options.faults.dead_rate = 0.2;
  options.faults.corrupt_rate = 0.15;
  const ShardCheckReport report = run_shard_check(schedule, options);
  EXPECT_TRUE(report.ok()) << report.divergence->detail;
}

TEST(ShardCheck, FaultsConfinedToOneTenantLeaveSiblingsExact) {
  const SimSchedule schedule = generate_schedule(303);
  ShardCheckOptions options;
  options.shards = 3;
  options.tenants = 3;
  options.fault_first_tenant_only = true;
  options.faults.seed = 303;
  options.faults.dead_rate = 0.4;
  options.faults.stall_rate = 0.3;
  options.faults.corrupt_rate = 0.2;
  const ShardCheckReport report = run_shard_check(schedule, options);
  EXPECT_TRUE(report.ok()) << report.divergence->detail;
  EXPECT_GT(report.faults_injected, 0u);
}

}  // namespace
}  // namespace ct

// Tests for ct_monitor: delivery manager under adversarial arrival orders,
// and the end-to-end monitoring entity (Fig. 1 architecture).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "model/oracle.hpp"
#include "model/trace_builder.hpp"
#include "monitor/delivery_manager.hpp"
#include "monitor/monitor.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

/// Feeds a trace's events to `ingest` in a randomized arrival interleaving:
/// per-process streams stay FIFO, but the cross-process schedule is shuffled.
template <typename Ingest>
void feed_interleaved(const Trace& t, std::uint64_t seed, Ingest&& ingest) {
  std::vector<std::vector<Event>> streams(t.process_count());
  for (const EventId id : t.delivery_order()) {
    streams[id.process].push_back(t.event(id));
  }
  std::vector<std::size_t> cursor(t.process_count(), 0);
  Prng rng(seed);
  std::size_t remaining = t.event_count();
  while (remaining > 0) {
    // Pick a random process with events left; bias toward draining bursts
    // so arrival order differs markedly from delivery order.
    ProcessId p;
    do {
      p = static_cast<ProcessId>(rng.index(t.process_count()));
    } while (cursor[p] >= streams[p].size());
    const std::size_t burst = 1 + rng.index(4);
    for (std::size_t k = 0; k < burst && cursor[p] < streams[p].size(); ++k) {
      ingest(streams[p][cursor[p]++]);
      --remaining;
    }
  }
}

TEST(DeliveryManager, DeliversValidOrderUnderAdversarialArrival) {
  const Trace t = generate_rpc_business({.groups = 3,
                                         .clients_per_group = 3,
                                         .servers_per_group = 2,
                                         .calls = 80,
                                         .seed = 51});
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    std::vector<Event> delivered;
    DeliveryManager dm(t.process_count(),
                       [&](const Event& e) { delivered.push_back(e); });
    feed_interleaved(t, seed, [&](const Event& e) { dm.ingest(e); });
    ASSERT_EQ(dm.pending(), 0u);
    ASSERT_EQ(delivered.size(), t.event_count());

    // The delivered sequence is a valid delivery order: per-process
    // ascending, receives after sends, sync halves adjacent.
    std::vector<EventIndex> seen(t.process_count(), 0);
    for (std::size_t i = 0; i < delivered.size(); ++i) {
      const Event& e = delivered[i];
      ASSERT_EQ(e.id.index, seen[e.id.process] + 1);
      seen[e.id.process] = e.id.index;
      if (e.kind == EventKind::kReceive) {
        ASSERT_LE(e.partner.index, seen[e.partner.process]);
      }
      if (e.kind == EventKind::kSync) {
        const bool adjacent =
            (i > 0 && delivered[i - 1].id == e.partner) ||
            (i + 1 < delivered.size() && delivered[i + 1].id == e.partner);
        ASSERT_TRUE(adjacent);
      }
    }
  }
}

TEST(DeliveryManager, BuffersReceiveUntilSendArrives) {
  TraceBuilder b;
  b.add_processes(2);
  const EventId s = b.send(0);
  b.receive(1, s);
  const Trace t = b.build("buffer", TraceFamily::kControl);

  std::vector<EventId> delivered;
  DeliveryManager dm(2, [&](const Event& e) { delivered.push_back(e.id); });
  dm.ingest(t.event(EventId{1, 1}));  // receive arrives first
  EXPECT_EQ(dm.pending(), 1u);
  EXPECT_TRUE(delivered.empty());
  dm.ingest(t.event(EventId{0, 1}));  // send unblocks it
  EXPECT_EQ(dm.pending(), 0u);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], (EventId{0, 1}));
  EXPECT_EQ(delivered[1], (EventId{1, 1}));
}

TEST(DeliveryManager, OrphanReceiveStaysPending) {
  TraceBuilder b;
  b.add_processes(2);
  const EventId s = b.send(0);
  b.receive(1, s);
  const Trace t = b.build("orphan", TraceFamily::kControl);

  DeliveryManager dm(2, [](const Event&) {});
  dm.ingest(t.event(EventId{1, 1}));  // the send never arrives
  EXPECT_EQ(dm.pending(), 1u);
  const auto pending = dm.pending_events();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, (EventId{1, 1}));
}

TEST(DeliveryManager, QuarantinesNonFifoStreamAndReadmitsOnGapFill) {
  std::vector<EventId> delivered;
  DeliveryManager dm(1, [&](const Event& e) { delivered.push_back(e.id); });
  EXPECT_TRUE(dm.ingest(Event{EventId{0, 1}, EventKind::kUnary, kNoEvent})
                  .accepted());
  // Index 3 skips ahead of the admitted prefix: held in quarantine.
  const auto gap = dm.ingest(Event{EventId{0, 3}, EventKind::kUnary, kNoEvent});
  EXPECT_EQ(gap.status, IngestStatus::kQuarantined);
  EXPECT_EQ(gap.error, IngestError::kFifoGap);
  EXPECT_EQ(dm.health().quarantined, 1u);
  // The gap fills: index 2 is admitted and index 3 readmitted behind it.
  const auto fill =
      dm.ingest(Event{EventId{0, 2}, EventKind::kUnary, kNoEvent});
  EXPECT_TRUE(fill.accepted());
  EXPECT_EQ(fill.delivered_now, 2u);
  EXPECT_EQ(dm.health().readmitted, 1u);
  EXPECT_EQ(dm.health().quarantined, 0u);
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered.back(), (EventId{0, 3}));
  EXPECT_TRUE(dm.health().accounted());
}

TEST(DeliveryManager, DuplicatesDropIdempotently) {
  std::vector<EventId> delivered;
  DeliveryManager dm(1, [&](const Event& e) { delivered.push_back(e.id); });
  const Event e{EventId{0, 1}, EventKind::kUnary, kNoEvent};
  EXPECT_TRUE(dm.ingest(e).accepted());
  EXPECT_EQ(dm.ingest(e).status, IngestStatus::kDuplicate);
  EXPECT_EQ(dm.ingest(e).status, IngestStatus::kDuplicate);
  EXPECT_EQ(delivered.size(), 1u);
  EXPECT_EQ(dm.health().duplicates, 2u);
  EXPECT_TRUE(dm.health().accounted());
}

TEST(DeliveryManager, RejectsStructurallyUnusableRecords) {
  DeliveryManager dm(2, [](const Event&) {});
  EXPECT_EQ(dm.ingest(Event{EventId{9, 1}, EventKind::kUnary, kNoEvent}).error,
            IngestError::kProcessOutOfRange);
  EXPECT_EQ(dm.ingest(Event{EventId{0, 0}, EventKind::kUnary, kNoEvent}).error,
            IngestError::kBadIndex);
  EXPECT_EQ(dm.ingest(Event{EventId{0, 1}, static_cast<EventKind>(7),
                            kNoEvent})
                .error,
            IngestError::kBadKind);
  // A receive naming an out-of-range partner can never be satisfied.
  EXPECT_EQ(dm.ingest(Event{EventId{0, 1}, EventKind::kReceive,
                            EventId{9, 1}})
                .error,
            IngestError::kBadPartner);
  EXPECT_EQ(dm.health().rejected, 3u);
  EXPECT_EQ(dm.health().quarantined, 1u);
  EXPECT_TRUE(dm.health().accounted());
}

TEST(DeliveryManager, BoundedBufferEvictsOldestBlockedRecord) {
  DeliveryPolicy policy;
  policy.max_buffered = 2;
  std::vector<EventId> delivered;
  DeliveryManager dm(
      3, [&](const Event& e) { delivered.push_back(e.id); }, policy);
  // Three receives whose sends never arrive — the third pushes the first
  // (oldest) out of the bounded buffer.
  dm.ingest(Event{EventId{0, 1}, EventKind::kReceive, EventId{2, 1}});
  dm.ingest(Event{EventId{1, 1}, EventKind::kReceive, EventId{2, 2}});
  dm.ingest(Event{EventId{0, 2}, EventKind::kReceive, EventId{2, 3}});
  EXPECT_EQ(dm.health().evicted, 1u);
  EXPECT_EQ(dm.pending(), 2u);
  EXPECT_TRUE(dm.health().accounted());
  // The hole left by the eviction keeps process 0's later events blocked —
  // delivered events always form a contiguous prefix.
  dm.ingest(Event{EventId{2, 1}, EventKind::kSend, EventId{0, 1}});
  EXPECT_TRUE(delivered.empty() ||
              delivered.front() != (EventId{0, 1}));
}

TEST(DeliveryManager, OrphanTimeoutEvictsStaleReceive) {
  DeliveryPolicy policy;
  policy.orphan_timeout = 3;
  DeliveryManager dm(2, [](const Event&) {}, policy);
  dm.ingest(Event{EventId{1, 1}, EventKind::kReceive, EventId{0, 99}});
  EXPECT_EQ(dm.pending(), 1u);
  // Three more ticks age the orphan past the timeout.
  for (EventIndex i = 1; i <= 4; ++i) {
    dm.ingest(Event{EventId{0, i}, EventKind::kUnary, kNoEvent});
  }
  EXPECT_EQ(dm.pending(), 0u);
  EXPECT_EQ(dm.health().evicted, 1u);
  EXPECT_TRUE(dm.health().accounted());
}

TEST(DeliveryManager, SyncHalvesWaitForEachOther) {
  TraceBuilder b;
  b.add_processes(3);
  b.unary(1);
  b.sync(0, 1);
  const Trace t = b.build("sync-wait", TraceFamily::kDce);

  std::vector<EventId> delivered;
  DeliveryManager dm(3, [&](const Event& e) { delivered.push_back(e.id); });
  dm.ingest(t.event(EventId{0, 1}));  // first half; partner not arrived
  EXPECT_EQ(delivered.size(), 0u);
  dm.ingest(t.event(EventId{1, 1}));  // partner's predecessor
  EXPECT_EQ(delivered.size(), 1u);    // only the unary released
  dm.ingest(t.event(EventId{1, 2}));  // second half arrives
  ASSERT_EQ(delivered.size(), 3u);
  // Halves adjacent.
  EXPECT_EQ(delivered[1].process + delivered[2].process, 1u);
}

// ------------------------------------------------------------ MonitoringEntity

TEST(MonitoringEntity, EndToEndAgainstOracle) {
  const Trace t = generate_web_server({.clients = 10,
                                       .servers = 3,
                                       .backends = 2,
                                       .requests = 60,
                                       .seed = 61});
  const CausalityOracle oracle(t);

  for (const auto backend : {TimestampBackend::kPrecomputedFm,
                             TimestampBackend::kClusterDynamic}) {
    MonitorOptions options;
    options.backend = backend;
    options.cluster.max_cluster_size = 5;
    options.cluster.fm_vector_width = 300;
    MonitoringEntity monitor(t.process_count(), options);
    feed_interleaved(t, 7, [&](const Event& e) { monitor.ingest(e); });
    ASSERT_EQ(monitor.pending(), 0u);
    ASSERT_EQ(monitor.stored(), t.event_count());

    for (const EventId e : t.delivery_order()) {
      for (const EventId f : t.delivery_order()) {
        ASSERT_EQ(monitor.precedes(e, f), oracle.happened_before(e, f))
            << e << " vs " << f;
      }
    }
  }
}

TEST(MonitoringEntity, ClusterBackendUsesLessTimestampStorage) {
  const Trace t = generate_locality_random({.processes = 40,
                                            .group_size = 8,
                                            .intra_rate = 0.9,
                                            .messages = 1500,
                                            .seed = 62});
  MonitorOptions fm_options;
  fm_options.backend = TimestampBackend::kPrecomputedFm;
  fm_options.cluster.fm_vector_width = 300;
  MonitorOptions cluster_options;
  cluster_options.backend = TimestampBackend::kClusterDynamic;
  cluster_options.cluster.max_cluster_size = 8;
  cluster_options.cluster.fm_vector_width = 300;

  MonitoringEntity fm(t.process_count(), fm_options);
  MonitoringEntity cluster(t.process_count(), cluster_options);
  for (const EventId id : t.delivery_order()) {
    fm.ingest(t.event(id));
    cluster.ingest(t.event(id));
  }
  EXPECT_LT(cluster.timestamp_words() * 2, fm.timestamp_words())
      << "cluster timestamps should save at least 2× here";
  const auto stats = cluster.cluster_stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->merges, 0u);
  EXPECT_FALSE(fm.cluster_stats().has_value());
}

TEST(MonitoringEntity, FindAndScroll) {
  const Trace t = generate_ring({.processes = 6, .iterations = 4, .seed = 63});
  MonitorOptions options;
  options.cluster.max_cluster_size = 3;
  options.cluster.fm_vector_width = 300;
  MonitoringEntity monitor(t.process_count(), options);
  for (const EventId id : t.delivery_order()) monitor.ingest(t.event(id));

  const auto found = monitor.find(EventId{2, 3});
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->id, (EventId{2, 3}));
  EXPECT_FALSE(monitor.find(EventId{2, 999}).has_value());

  std::vector<EventIndex> scrolled;
  monitor.scroll(4, 2, [&](const Event& e) {
    scrolled.push_back(e.id.index);
    return scrolled.size() < 5;
  });
  ASSERT_EQ(scrolled.size(), 5u);
  EXPECT_EQ(scrolled.front(), 2u);
  EXPECT_TRUE(std::is_sorted(scrolled.begin(), scrolled.end()));
}

TEST(MonitoringEntity, PrecedesOnUndeliveredEventThrows) {
  MonitorOptions options;
  options.cluster.max_cluster_size = 2;
  options.cluster.fm_vector_width = 300;
  MonitoringEntity monitor(2, options);
  EXPECT_THROW(monitor.precedes(EventId{0, 1}, EventId{1, 1}), CheckFailure);
}

}  // namespace
}  // namespace ct

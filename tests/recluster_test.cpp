// Crash-safe online re-clustering tests (docs/FAULT_MODEL.md §9): the
// decaying communication matrix, the migration planner's hysteresis /
// cooldown / size-cap bars, the two-phase coordinator (intent → dual-read
// verify → commit / rollback), WAL migration frames, recovery's
// apply-newest-committed / discard-uncommitted rule, snapshot v3 round-trips
// of a migrated monitor, the MigratingClusterEngine stale-reference
// regression, and the ShardRouter epoch integration.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "cluster/comm_matrix.hpp"
#include "core/migrating_engine.hpp"
#include "durability/recovery.hpp"
#include "durability/storage.hpp"
#include "durability/wal.hpp"
#include "model/event.hpp"
#include "monitor/monitor.hpp"
#include "recluster/coordinator.hpp"
#include "recluster/migration_plan.hpp"
#include "shard/shard_router.hpp"
#include "simcheck/crash_sweep.hpp"
#include "simcheck/generator.hpp"
#include "timestamp/ondemand_fm.hpp"
#include "trace/snapshot.hpp"
#include "util/check.hpp"

namespace ct {
namespace {

Event make(ProcessId p, EventIndex i, EventKind k,
           EventId partner = kNoEvent) {
  Event e;
  e.id = EventId{p, i};
  e.kind = k;
  e.partner = partner;
  return e;
}

/// Appends a send on `from` and its receive on `to` to `out`.
void message(std::vector<Event>& out, std::vector<EventIndex>& next,
             ProcessId from, ProcessId to) {
  const EventIndex fi = next[from]++;
  const EventIndex ti = next[to]++;
  out.push_back(make(from, fi, EventKind::kSend, EventId{to, ti}));
  out.push_back(make(to, ti, EventKind::kReceive, EventId{from, fi}));
}

MonitorOptions cluster_options(std::size_t process_count,
                               std::size_t max_cluster_size,
                               double nth_threshold) {
  MonitorOptions mo;
  mo.backend = TimestampBackend::kClusterDynamic;
  mo.cluster.max_cluster_size = max_cluster_size;
  mo.cluster.fm_vector_width = process_count;
  mo.nth_threshold = nth_threshold;
  return mo;
}

/// Six processes, merge-on-first, maxCS 3: stage A pairs up {0,1} {2,3}
/// {4,5}; stage B floods 4 → 0 so the decayed matrix wants 0 in 4's
/// cluster (room: 2 + 1 <= 3).
std::vector<Event> phase_shift_stream() {
  std::vector<Event> out;
  std::vector<EventIndex> next(6, 1);
  for (int r = 0; r < 30; ++r) {
    message(out, next, 0, 1);
    message(out, next, 2, 3);
    message(out, next, 4, 5);
  }
  for (int r = 0; r < 120; ++r) message(out, next, 4, 0);
  return out;
}

void ingest_all(MonitoringEntity& monitor, const std::vector<Event>& events) {
  for (const Event& e : events) monitor.ingest(e);
}

MigrationConfig eager_config() {
  MigrationConfig mc;
  mc.planner.hysteresis = 0.1;
  mc.planner.max_moves = 4;
  mc.planner.min_weight = 1.0;
  mc.planner.decay_window = 64;
  mc.planner.cooldown_epochs = 0;
  mc.verify_pairs = 32;
  mc.verify_deadline_ticks = 0;  // unlimited
  mc.seed = 7;
  return mc;
}

/// Every ordered pair of delivered events answers identically to an
/// on-demand Fidge/Mattern oracle over the same delivered trace.
void expect_answer_identity(const MonitoringEntity& monitor) {
  const Trace t = monitor.delivered_trace();
  OnDemandFmEngine truth(t, 512);
  const auto order = t.delivery_order();
  for (const EventId e : order) {
    for (const EventId f : order) {
      ASSERT_EQ(monitor.precedes(e, f), truth.precedes(e, f))
          << e << " vs " << f;
    }
  }
}

// ---------------------------------------------------------------------------
// DecayingCommMatrix (satellite: windowed exponential decay)
// ---------------------------------------------------------------------------

TEST(DecayingCommMatrix, DecaysToExactZero) {
  DecayingCommMatrix m(4, 0.5, 4);
  m.record_pair(0, 1);
  EXPECT_GT(m.affinity(0, 1), 0.0);
  // Roll many windows with unrelated traffic: 0-1 halves each window and
  // must eventually snap to exactly zero, not a denormal residue.
  for (int i = 0; i < 50 * 4; ++i) m.record_pair(2, 3);
  EXPECT_EQ(m.affinity(0, 1), 0.0);
  EXPECT_GT(m.affinity(2, 3), 0.0);
  EXPECT_GT(m.windows_rolled(), 0u);
}

TEST(DecayingCommMatrix, SingleHotPairDominates) {
  DecayingCommMatrix m(6, 0.8, 16);
  for (int i = 0; i < 200; ++i) {
    m.record_pair(0, 4);                       // the hot pair
    if (i % 8 == 0) m.record_pair(1, 2);       // background noise
    if (i % 16 == 0) m.record_pair(3, 5);
  }
  for (ProcessId p = 0; p < 6; ++p) {
    for (ProcessId q = p + 1; q < 6; ++q) {
      if (p == 0 && q == 4) continue;
      EXPECT_GT(m.affinity(0, 4), m.affinity(p, q)) << p << "," << q;
    }
  }
  EXPECT_GT(m.toward(0, {4, 5}), m.toward(0, {1, 2, 3}));
}

TEST(DecayingCommMatrix, SymmetryPreserved) {
  DecayingCommMatrix m(5, 0.7, 8);
  for (int i = 0; i < 300; ++i) {
    m.record_pair(static_cast<ProcessId>(i % 5),
                  static_cast<ProcessId>((i * 3 + 1) % 5));
  }
  for (ProcessId p = 0; p < 5; ++p) {
    for (ProcessId q = 0; q < 5; ++q) {
      EXPECT_EQ(m.affinity(p, q), m.affinity(q, p)) << p << "," << q;
    }
  }
}

TEST(DecayingCommMatrix, IgnoresSelfMessagesAndNonReceives) {
  DecayingCommMatrix m(3, 0.8, 8);
  m.record(make(0, 1, EventKind::kUnary));
  m.record(make(0, 2, EventKind::kSend, EventId{1, 1}));
  m.record(make(1, 1, EventKind::kReceive, EventId{1, 2}));  // self-message
  EXPECT_EQ(m.recorded(), 0u);
  m.record(make(1, 2, EventKind::kReceive, EventId{0, 2}));
  EXPECT_EQ(m.recorded(), 1u);
  EXPECT_GT(m.affinity(0, 1), 0.0);
}

// ---------------------------------------------------------------------------
// Migration planner
// ---------------------------------------------------------------------------

TEST(MigrationPlanner, MovesHotProcessTowardItsTraffic) {
  MonitoringEntity monitor(6, cluster_options(6, 3, -1.0));
  ingest_all(monitor, phase_shift_stream());

  MigrationConfig mc = eager_config();
  DecayingCommMatrix matrix(6, mc.planner.decay, mc.planner.decay_window);
  for (const EventId id : monitor.delivery_log()) {
    matrix.record(monitor.event(id));
  }
  std::vector<std::uint64_t> never_moved(6, 0);
  const MigrationPlan plan =
      build_migration_plan(monitor, matrix, mc.planner, never_moved, 1);
  ASSERT_FALSE(plan.empty());
  bool moves_zero = false;
  for (const MigrationMove& mv : plan.moves) {
    if (mv.process == 0) moves_zero = true;
  }
  EXPECT_TRUE(moves_zero) << "process 0's traffic moved to cluster {4,5}";
  // The plan's partition is complete: every process appears exactly once.
  std::vector<int> seen(6, 0);
  for (const auto& cluster : plan.partition) {
    for (const ProcessId p : cluster) ++seen[p];
  }
  for (ProcessId p = 0; p < 6; ++p) EXPECT_EQ(seen[p], 1) << "process " << p;
  EXPECT_NE(plan.digest(), 0u);
}

TEST(MigrationPlanner, CooldownBlocksAtTheBoundary) {
  MonitoringEntity monitor(6, cluster_options(6, 3, -1.0));
  ingest_all(monitor, phase_shift_stream());

  MigrationPlannerConfig pc = eager_config().planner;
  pc.cooldown_epochs = 2;
  DecayingCommMatrix matrix(6, pc.decay, pc.decay_window);
  for (const EventId id : monitor.delivery_log()) {
    matrix.record(monitor.event(id));
  }
  // Process 0 moved at epoch 3; planning epoch 5 sits exactly AT the
  // cooldown boundary (epoch <= last + cooldown) and must refuse the move;
  // epoch 6 is one past and must allow it again.
  std::vector<std::uint64_t> moved(6, 0);
  moved[0] = 3;
  const MigrationPlan at_boundary =
      build_migration_plan(monitor, matrix, pc, moved, 5);
  for (const MigrationMove& mv : at_boundary.moves) {
    EXPECT_NE(mv.process, 0u) << "cooldown epoch must block process 0";
  }
  const MigrationPlan past_boundary =
      build_migration_plan(monitor, matrix, pc, moved, 6);
  bool moves_zero = false;
  for (const MigrationMove& mv : past_boundary.moves) {
    if (mv.process == 0) moves_zero = true;
  }
  EXPECT_TRUE(moves_zero);
}

TEST(MigrationPlanner, RespectsTargetExactlyAtMaxClusterSize) {
  // maxCS 2: {4,5} is already full, so 0 cannot join it no matter how hot
  // the traffic — the plan may split 0 off but never overfill a cluster.
  MonitoringEntity monitor(6, cluster_options(6, 2, -1.0));
  ingest_all(monitor, phase_shift_stream());

  const MigrationPlannerConfig pc = eager_config().planner;
  DecayingCommMatrix matrix(6, pc.decay, pc.decay_window);
  for (const EventId id : monitor.delivery_log()) {
    matrix.record(monitor.event(id));
  }
  std::vector<std::uint64_t> never_moved(6, 0);
  const MigrationPlan plan =
      build_migration_plan(monitor, matrix, pc, never_moved, 1);
  const std::size_t cap = monitor.options().cluster.max_cluster_size;
  for (const auto& cluster : plan.partition) {
    EXPECT_LE(cluster.size(), cap);
  }
}

// ---------------------------------------------------------------------------
// MigrationCoordinator: two-phase protocol
// ---------------------------------------------------------------------------

TEST(Coordinator, CommitSwapsEngineAndPreservesAnswers) {
  MonitoringEntity monitor(6, cluster_options(6, 3, -1.0));
  ingest_all(monitor, phase_shift_stream());

  MigrationCoordinator coordinator(monitor, eager_config());
  ASSERT_EQ(coordinator.run_cycle(), MigrationOutcome::kCommitted);
  EXPECT_EQ(monitor.migration_epoch(), 1u);
  EXPECT_FALSE(monitor.preset_partition().empty());
  const MigrationStats& stats = coordinator.stats();
  EXPECT_EQ(stats.committed, 1u);
  EXPECT_EQ(stats.rolled_back, 0u);
  EXPECT_GE(stats.moves_applied, 1u);
  EXPECT_GT(stats.verify_checks, 0u);
  expect_answer_identity(monitor);

  // The monitor keeps ingesting after the swap and stays exact.
  std::vector<EventIndex> next(6, 1);
  for (ProcessId p = 0; p < 6; ++p) {
    next[p] = monitor.delivered_count(p) + 1;
  }
  std::vector<Event> more;
  for (int r = 0; r < 10; ++r) message(more, next, 0, 5);
  ingest_all(monitor, more);
  expect_answer_identity(monitor);
}

TEST(Coordinator, CorruptShadowIsCaughtAndRolledBack) {
  MonitoringEntity monitor(6, cluster_options(6, 3, -1.0));
  ingest_all(monitor, phase_shift_stream());

  MigrationCoordinator coordinator(monitor, eager_config());
  ASSERT_EQ(coordinator.run_cycle(MigrationFault::kCorruptShadow),
            MigrationOutcome::kRolledBack);
  const MigrationStats& stats = coordinator.stats();
  EXPECT_EQ(stats.faults_injected, 1u);
  EXPECT_EQ(stats.rollback_divergence, 1u);
  EXPECT_EQ(stats.rollback_fault, 1u);
  EXPECT_EQ(stats.committed, 0u);
  // Rollback restores the old clustering exactly: the live engine was
  // never touched.
  EXPECT_EQ(monitor.migration_epoch(), 0u);
  EXPECT_TRUE(monitor.preset_partition().empty());
  expect_answer_identity(monitor);
}

TEST(Coordinator, StalledVerifyRollsBackOnDeadline) {
  MonitoringEntity monitor(6, cluster_options(6, 3, -1.0));
  ingest_all(monitor, phase_shift_stream());

  MigrationConfig mc = eager_config();
  mc.verify_deadline_ticks = 10'000;
  MigrationCoordinator coordinator(monitor, mc);
  ASSERT_EQ(coordinator.run_cycle(MigrationFault::kStalledVerify),
            MigrationOutcome::kRolledBack);
  EXPECT_EQ(coordinator.stats().rollback_deadline, 1u);
  EXPECT_EQ(monitor.migration_epoch(), 0u);
  expect_answer_identity(monitor);
}

TEST(Coordinator, NoPlanWhenClusteringAlreadyFits) {
  // Traffic that matches the clustering exactly: pairs merge on first
  // message and stay; nothing clears the hysteresis bar.
  MonitoringEntity monitor(6, cluster_options(6, 3, -1.0));
  std::vector<Event> stream;
  std::vector<EventIndex> next(6, 1);
  for (int r = 0; r < 40; ++r) {
    message(stream, next, 0, 1);
    message(stream, next, 2, 3);
    message(stream, next, 4, 5);
  }
  ingest_all(monitor, stream);
  MigrationCoordinator coordinator(monitor, eager_config());
  EXPECT_EQ(coordinator.run_cycle(), MigrationOutcome::kNoPlan);
  EXPECT_EQ(coordinator.stats().planned, 0u);
}

// ---------------------------------------------------------------------------
// WAL migration frames + recovery
// ---------------------------------------------------------------------------

TEST(WalMigration, IntentAndCommitRoundTripThroughScan) {
  SimulatedStorage sim;
  DurableLog log(sim, {});
  MonitoringEntity monitor(6, cluster_options(6, 3, -1.0));
  monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
  std::vector<Event> stream;
  std::vector<EventIndex> next(6, 1);
  for (int r = 0; r < 5; ++r) message(stream, next, 0, 1);
  ingest_all(monitor, stream);

  WalMigration intent;
  intent.epoch = 1;
  intent.plan_digest = 0xfeedbeefULL;
  intent.moves = {MigrationMove{0, 0, 4}};
  intent.partition = {{1}, {0, 4, 5}, {2, 3}};
  const std::uint64_t position = log.append_migration_intent(intent);
  EXPECT_EQ(position, monitor.delivery_log().size());

  wal::WalScan scan = wal::scan_wal(sim, 0);
  ASSERT_EQ(scan.migrations.size(), 1u);
  EXPECT_FALSE(scan.migrations[0].committed);
  EXPECT_EQ(scan.migrations[0].position, position);
  EXPECT_EQ(scan.migrations[0].epoch, 1u);
  EXPECT_EQ(scan.migrations[0].plan_digest, 0xfeedbeefULL);
  ASSERT_EQ(scan.migrations[0].moves.size(), 1u);
  EXPECT_EQ(scan.migrations[0].moves[0].process, 0u);
  EXPECT_EQ(scan.migrations[0].moves[0].to, 4u);
  EXPECT_EQ(scan.migrations[0].partition, intent.partition);

  log.append_migration_commit(position, 1, 0xfeedbeefULL);
  scan = wal::scan_wal(sim, 0);
  ASSERT_EQ(scan.migrations.size(), 1u);
  EXPECT_TRUE(scan.migrations[0].committed);
  // The frames do not disturb record accounting.
  EXPECT_EQ(scan.records.size(), monitor.delivery_log().size());
}

TEST(Recovery, CommittedMigrationIsReappliedUncommittedDiscarded) {
  const MonitorOptions mo = cluster_options(6, 3, -1.0);
  SimulatedStorage sim;
  {
    MonitoringEntity monitor(6, mo);
    DurableLog log(sim, {});
    monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
    ingest_all(monitor, phase_shift_stream());

    MigrationCoordinator coordinator(monitor, eager_config());
    coordinator.attach_wal(&log);
    // One committed cycle, then a faulted cycle whose intent must be
    // discarded by recovery.
    ASSERT_EQ(coordinator.run_cycle(), MigrationOutcome::kCommitted);
    std::vector<EventIndex> next(6, 1);
    for (ProcessId p = 0; p < 6; ++p) {
      next[p] = monitor.delivered_count(p) + 1;
    }
    std::vector<Event> more;
    for (int r = 0; r < 40; ++r) message(more, next, 1, 2);
    ingest_all(monitor, more);
    const MigrationOutcome second =
        coordinator.run_cycle(MigrationFault::kStalledVerify);
    EXPECT_NE(second, MigrationOutcome::kCommitted);
    log.sync();

    const auto img = sim.materialize({sim.op_count(), CrashFault::kClean, 1});
    RecoveredMonitor rec = recover_monitor(*img, 6, mo);
    EXPECT_EQ(rec.report.migrations_applied, 1u);
    if (second == MigrationOutcome::kRolledBack) {
      EXPECT_EQ(rec.report.migrations_discarded, 1u);
    }
    EXPECT_EQ(rec.report.migration_epoch, 1u);
    EXPECT_EQ(rec.monitor->migration_epoch(), monitor.migration_epoch());
    EXPECT_EQ(rec.monitor->preset_partition(), monitor.preset_partition());
    // Recovered answers match the live monitor bit-for-bit.
    const auto order = monitor.delivery_log();
    for (std::size_t i = 0; i < order.size(); i += 7) {
      for (std::size_t j = 0; j < order.size(); j += 11) {
        ASSERT_EQ(rec.monitor->precedes(order[i], order[j]),
                  monitor.precedes(order[i], order[j]));
      }
    }
  }
}

TEST(Recovery, CrashBeforeCommitRestoresOldClustering) {
  const MonitorOptions mo = cluster_options(6, 3, -1.0);
  SimulatedStorage sim;
  MonitoringEntity monitor(6, mo);
  DurableLog log(sim, {});
  monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
  ingest_all(monitor, phase_shift_stream());
  log.sync();
  const std::size_t before_commit = sim.op_count();

  MigrationCoordinator coordinator(monitor, eager_config());
  coordinator.attach_wal(&log);
  ASSERT_EQ(coordinator.run_cycle(), MigrationOutcome::kCommitted);

  // Crash between the intent and the commit frame: materialize the storage
  // as it stood before the cycle's commit sync. Recovery must restore the
  // pre-migration clustering exactly — never a hybrid.
  const auto img = sim.materialize({before_commit, CrashFault::kClean, 1});
  RecoveredMonitor rec = recover_monitor(*img, 6, mo);
  EXPECT_EQ(rec.report.migrations_applied, 0u);
  EXPECT_EQ(rec.monitor->migration_epoch(), 0u);
  EXPECT_TRUE(rec.monitor->preset_partition().empty());
  expect_answer_identity(*rec.monitor);
}

// ---------------------------------------------------------------------------
// Snapshot v3
// ---------------------------------------------------------------------------

TEST(SnapshotV3, RoundTripsAMigratedMonitor) {
  MonitoringEntity monitor(6, cluster_options(6, 3, -1.0));
  ingest_all(monitor, phase_shift_stream());
  MigrationCoordinator coordinator(monitor, eager_config());
  ASSERT_EQ(coordinator.run_cycle(), MigrationOutcome::kCommitted);

  std::stringstream buffer;
  save_snapshot(buffer, monitor);
  SnapshotMeta meta;
  auto restored = load_snapshot(buffer, &meta);
  EXPECT_EQ(meta.version, 3u);
  EXPECT_EQ(restored->migration_epoch(), monitor.migration_epoch());
  EXPECT_EQ(restored->preset_partition(), monitor.preset_partition());
  expect_answer_identity(*restored);
}

// ---------------------------------------------------------------------------
// MigratingClusterEngine stale-reference regression (satellite audit)
// ---------------------------------------------------------------------------

TEST(MigratingEngine, StoredSnapshotsSurviveLaterMigrations) {
  // Audit conclusion: observe() snapshots the member list as a shared_ptr
  // BEFORE note_receive() can migrate, and rebuild_members() publishes a
  // fresh vector instead of mutating in place — so stored timestamps can
  // never dangle or silently change. This regression pins both halves.
  MigratingEngineConfig config;
  config.max_cluster_size = 2;
  config.fm_vector_width = 8;
  config.nth_threshold = -1.0;  // merge-on-first pairs {0,1} up
  config.window = 4;
  config.home_share_low = 0.95;
  config.cooldown = 0;
  MigratingClusterEngine engine(6, config);

  std::vector<Event> stream;
  std::vector<EventIndex> next(6, 1);
  // The merge receive lands on P0, so P1's window stays clean.
  message(stream, next, 1, 0);  // merge {0,1}
  // P1's window: three foreign receives from P4, then ONE home receive
  // from P0. The home receive is intra-cluster (covered snapshot of
  // {0,1}) and is the event whose window tips P1 into migrating to {4} —
  // the exact mid-observe hazard the audit targets.
  for (int i = 0; i < 3; ++i) message(stream, next, 4, 1);
  message(stream, next, 0, 1);
  const EventId tipping = stream.back().id;
  for (const Event& e : stream) engine.observe(e);
  ASSERT_EQ(engine.migrations(), 1u);

  const ClusterTimestamp& stored = engine.timestamp(tipping);
  ASSERT_NE(stored.covered, nullptr);
  const auto snapshot_members = *stored.covered;
  const void* snapshot_ptr = stored.covered.get();
  // R2: the snapshot covers P1's OLD home cluster {0,1} (which includes
  // the sender), not the post-migration {1,4}.
  EXPECT_EQ(snapshot_members, (std::vector<ProcessId>{0, 1}));

  // Drive more merges and traffic; the stored snapshot must not move or
  // change even though {0,1} was rebuilt to {0} when P1 left.
  stream.clear();
  message(stream, next, 2, 3);  // merge {2,3}
  message(stream, next, 0, 5);  // merge {0,5}
  for (int i = 0; i < 8; ++i) message(stream, next, 4, 1);
  for (const Event& e : stream) engine.observe(e);
  const ClusterTimestamp& reread = engine.timestamp(tipping);
  EXPECT_EQ(reread.covered.get(), snapshot_ptr);
  EXPECT_EQ(*reread.covered, snapshot_members);
}

TEST(MigratingEngine, CooldownBoundaryAndEmptiedHomeCluster) {
  MigratingEngineConfig config;
  config.max_cluster_size = 2;
  config.fm_vector_width = 8;
  config.nth_threshold = 1e9;
  config.window = 4;
  config.home_share_low = 0.95;
  config.cooldown = 1;
  MigratingClusterEngine engine(6, config);
  const std::size_t initial_clusters = engine.stats().final_clusters;

  std::vector<Event> stream;
  std::vector<EventIndex> next(6, 1);
  // Window 1: four receives from P1 migrate P0 into {1}; P0's home
  // singleton cluster empties and dies.
  for (int i = 0; i < 4; ++i) message(stream, next, 1, 0);
  for (const Event& e : stream) engine.observe(e);
  EXPECT_EQ(engine.migrations(), 1u);
  EXPECT_EQ(engine.stats().final_clusters, initial_clusters - 1);

  // Window 2: traffic shifts to P2, but the window lands exactly on the
  // cooldown — it burns the cooldown instead of migrating.
  stream.clear();
  for (int i = 0; i < 4; ++i) message(stream, next, 2, 0);
  for (const Event& e : stream) engine.observe(e);
  EXPECT_EQ(engine.migrations(), 1u) << "cooldown window must not migrate";

  // Window 3: one past the boundary; the move to {2} goes through
  // (target size 1 + 1 <= maxCS 2).
  stream.clear();
  for (int i = 0; i < 4; ++i) message(stream, next, 2, 0);
  for (const Event& e : stream) engine.observe(e);
  EXPECT_EQ(engine.migrations(), 2u);

  // Target exactly at max_cluster_size: P3's traffic points at the full
  // cluster {0,2}; the migration rule must refuse it.
  stream.clear();
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 4; ++i) message(stream, next, 2, 3);
  }
  for (const Event& e : stream) engine.observe(e);
  EXPECT_EQ(engine.migrations(), 2u)
      << "a full target cluster must block the move";
}

// ---------------------------------------------------------------------------
// ShardRouter integration: migrations ride serving epochs
// ---------------------------------------------------------------------------

TEST(ShardMigration, RidesEpochBoundaryAndKeepsAnswersExact) {
  ShardRouter router;
  TenantConfig tc;
  tc.process_count = 6;
  tc.monitor = cluster_options(6, 3, -1.0);
  tc.shards = 3;
  const TenantId t = router.add_tenant(tc);
  SimulatedStorage storage;
  router.attach_wal(t, storage);

  for (const Event& e : phase_shift_stream()) router.ingest(t, e);

  const auto result = router.migrate_tenant(t, eager_config());
  ASSERT_EQ(result.outcome, MigrationOutcome::kCommitted);
  EXPECT_EQ(result.migration_epoch, 1u);
  EXPECT_EQ(result.replicas_applied, 3u);
  EXPECT_EQ(result.replicas_skipped, 0u);
  EXPECT_EQ(router.tenant_migration_epoch(t), 1u);
  EXPECT_EQ(router.tenant_health(t).migrations_committed, 1u);

  // Every replica adopted the partition, so the epoch opens with a fully
  // coherent set and answers stay exact.
  router.open_epoch();
  EXPECT_EQ(router.tenant_health(t).divergent_replicas, 0u);
  const Trace trace = router.shard_monitor(t, 0).delivered_trace();
  OnDemandFmEngine truth(trace, 512);
  const auto order = trace.delivery_order();
  for (std::size_t i = 0; i < order.size(); i += 5) {
    for (std::size_t j = 0; j < order.size(); j += 9) {
      const RouterQueryResult r = router.precedence(t, order[i], order[j]);
      ASSERT_TRUE(r.answer.has_value());
      ASSERT_EQ(*r.answer, truth.precedes(order[i], order[j]));
    }
  }
  router.close_epoch();

  // The migration is durable: recovery of the tenant's namespaced WAL
  // re-applies it.
  const auto img =
      storage.materialize({storage.op_count(), CrashFault::kClean, 1});
  RecoveredMonitor rec =
      recover_monitor(*img, 6, tc.monitor, wal::tenant_namespace(t));
  EXPECT_EQ(rec.monitor->migration_epoch(), 1u);
  EXPECT_EQ(rec.monitor->preset_partition(),
            router.shard_monitor(t, 0).preset_partition());
}

TEST(ShardMigration, DivergentReplicaSkipsThenReconciles) {
  ShardRouter router;
  TenantConfig tc;
  tc.process_count = 6;
  tc.monitor = cluster_options(6, 3, -1.0);
  tc.shards = 3;
  const TenantId t = router.add_tenant(tc);
  for (const Event& e : phase_shift_stream()) router.ingest(t, e);

  // Corrupt replica 2's cluster store: its digest now disagrees with the
  // leader, so the migration must skip it rather than migrate wrong state.
  MonitoringEntity& victim = router.mutable_shard_monitor(t, 2);
  const EventId target = victim.delivery_log().front();
  victim.inject_timestamp_corruption(target, 0, 0x7777);

  const auto result = router.migrate_tenant(t, eager_config());
  ASSERT_EQ(result.outcome, MigrationOutcome::kCommitted);
  EXPECT_EQ(result.replicas_applied, 2u);
  EXPECT_EQ(result.replicas_skipped, 1u);
  EXPECT_EQ(router.tenant_health(t).replicas_skipped_migration, 1u);

  // The skipped replica quarantines at the next epoch (partition folds
  // into the replica digest) — the fleet keeps serving without it.
  router.open_epoch();
  EXPECT_EQ(router.tenant_health(t).divergent_replicas, 1u);
  router.close_epoch();

  // Repair + reconcile: rebuild the corrupt clusters, re-align the
  // partition, and the replica rejoins the coherent set.
  for (const ClusterId c : victim.cluster_ids()) victim.rebuild_cluster(c);
  router.reconcile_replica(t, 2);
  EXPECT_EQ(victim.migration_epoch(), router.tenant_migration_epoch(t));
  const std::uint64_t quarantines_before =
      router.tenant_health(t).divergent_replicas;
  router.open_epoch();
  EXPECT_EQ(router.tenant_health(t).divergent_replicas, quarantines_before);
  router.close_epoch();
}

// ---------------------------------------------------------------------------
// Crash sweep: never-hybrid across generated schedules
// ---------------------------------------------------------------------------

TEST(CrashSweepMigration, GeneratedSchedulesStayNeverHybrid) {
  CrashSweepParams params;
  params.torn_samples = 8;
  params.short_samples = 4;
  std::uint64_t committed = 0, rolled_back = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const SimSchedule schedule = generate_schedule(seed);
    const CrashSweepReport report = run_crash_sweep(schedule, params);
    ASSERT_TRUE(report.ok())
        << "seed " << seed << ": " << report.divergence->detail;
    committed += report.migrations_committed;
    rolled_back += report.migrations_rolled_back;
  }
  // The sweep only proves never-hybrid if migrations actually commit (and
  // faulted ones roll back) somewhere in the corpus.
  EXPECT_GT(committed, 0u);
  EXPECT_GT(rolled_back, 0u);
}

}  // namespace
}  // namespace ct

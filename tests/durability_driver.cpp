// Crash-consistency sweep driver.
//
// Sweep mode (default): expands --schedules seeds into randomized schedules
// (simcheck/generator.hpp), records each through a monitor + write-ahead log
// on simulated storage, and crashes the storage at every sync boundary plus
// sampled mid-record torn writes, short writes, bit flips, and stale
// segments (simcheck/crash_sweep.hpp), verifying prefix-consistent recovery,
// loss accounting, and answer identity at each point. On a failure the
// schedule is delta-minimized against the sweep (simcheck/shrink.hpp), saved
// as a .ctsim replay under --out-dir, and the repro command line is printed;
// exit code 1.
//
// Replay mode (--replay=file.ctsim): re-runs the sweep on one saved replay.
//
//   durability_driver --seed=1 --schedules=8 --torn-samples=30
//   durability_driver --policy=every-record --schedules=4
//   durability_driver --replay=tests/simcheck_corpus/foo.ctsim
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>

#include "simcheck/crash_sweep.hpp"
#include "simcheck/generator.hpp"
#include "simcheck/replay_io.hpp"
#include "simcheck/schedule.hpp"
#include "simcheck/shrink.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

using namespace ct;

SyncPolicy parse_policy(const std::string& name) {
  if (name == "none") return SyncPolicy::kNone;
  if (name == "every-record") return SyncPolicy::kEveryRecord;
  if (name == "every-n") return SyncPolicy::kEveryN;
  if (name == "on-checkpoint") return SyncPolicy::kOnCheckpoint;
  CT_CHECK_MSG(false, "unknown sync policy '" << name << "'");
  return SyncPolicy::kEveryN;
}

void print_divergence(const SimSchedule& schedule, const SimDivergence& d) {
  std::printf(
      "CRASH-SWEEP FAILURE in %s (seed %llu) at journal cut %zu [%s]:\n"
      "  %s\n  pair e=P%u.%u f=P%u.%u\n",
      schedule.name.c_str(), static_cast<unsigned long long>(schedule.seed),
      d.op_index, d.config.c_str(), d.detail.c_str(), d.e.process, d.e.index,
      d.f.process, d.f.index);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliArgs args(argc, argv);
    const bool verbose = args.get_bool_or("verbose", false);

    CrashSweepParams params;
    params.policy = parse_policy(args.get_or("policy", "every-n"));
    params.sync_every =
        static_cast<std::size_t>(args.get_int_or("sync-every", 8));
    params.segment_bytes =
        static_cast<std::size_t>(args.get_int_or("segment-bytes", 4096));
    params.torn_samples =
        static_cast<std::size_t>(args.get_int_or("torn-samples", 16));
    params.short_samples =
        static_cast<std::size_t>(args.get_int_or("short-samples", 8));
    params.rot_samples =
        static_cast<std::size_t>(args.get_int_or("rot-samples", 4));
    params.stale_samples =
        static_cast<std::size_t>(args.get_int_or("stale-samples", 2));
    params.seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));

    if (const auto replay = args.get("replay")) {
      const SimSchedule schedule = load_replay(*replay);
      const CrashSweepReport report = run_crash_sweep(schedule, params);
      if (!report.ok()) {
        print_divergence(schedule, *report.divergence);
        return 1;
      }
      std::printf("replay %s: OK (%zu crash points, %llu checks)\n",
                  replay->c_str(), report.crash_points,
                  static_cast<unsigned long long>(report.checks));
      return 0;
    }

    const std::size_t schedules =
        static_cast<std::size_t>(args.get_int_or("schedules", 8));
    const double budget = args.get_double_or("budget", 0.0);
    const std::string out_dir =
        args.get_or("out-dir", "durability-replays");

    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&start] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };

    std::size_t ran = 0, points = 0, sync_points = 0, torn_points = 0;
    std::uint64_t total_checks = 0, total_lost = 0;
    std::uint64_t migrations = 0, rollbacks = 0;
    std::size_t generations = 0, quarantined = 0;
    std::size_t rung_mapped = 0, rung_snapshot = 0, rung_wal = 0;
    for (std::size_t i = 0; i < schedules; ++i) {
      if (budget > 0.0 && elapsed() > budget) break;
      const std::uint64_t schedule_seed = params.seed + i;
      const SimSchedule schedule = generate_schedule(schedule_seed);
      const CrashSweepReport report = run_crash_sweep(schedule, params);
      ++ran;
      points += report.crash_points;
      sync_points += report.sync_boundary_points;
      torn_points += report.torn_points;
      total_checks += report.checks;
      total_lost += report.records_lost;
      migrations += report.migrations_committed;
      rollbacks += report.migrations_rolled_back;
      generations += report.generations_published;
      quarantined += report.snapshots_quarantined;
      rung_mapped += report.ladder_mapped;
      rung_snapshot += report.ladder_snapshot;
      rung_wal += report.ladder_wal;
      if (verbose) {
        std::printf(
            "schedule %llu (%s): %zu crash points (%zu sync, %zu torn), "
            "%llu lost, %llu migrations (+%llu rolled back), "
            "%zu generations, rungs %zu/%zu/%zu, %zu quarantined, "
            "%llu checks\n",
            static_cast<unsigned long long>(schedule_seed),
            schedule.name.c_str(), report.crash_points,
            report.sync_boundary_points, report.torn_points,
            static_cast<unsigned long long>(report.records_lost),
            static_cast<unsigned long long>(report.migrations_committed),
            static_cast<unsigned long long>(report.migrations_rolled_back),
            report.generations_published, report.ladder_mapped,
            report.ladder_snapshot, report.ladder_wal,
            report.snapshots_quarantined,
            static_cast<unsigned long long>(report.checks));
      }
      if (report.ok()) continue;

      print_divergence(schedule, *report.divergence);
      std::printf("shrinking...\n");
      const ShrinkResult shrunk = shrink_schedule(
          schedule, [&params](const SimSchedule& candidate) {
            return !run_crash_sweep(candidate, params).ok();
          });
      const CrashSweepReport confirm = run_crash_sweep(shrunk.schedule, params);
      CT_CHECK_MSG(!confirm.ok(), "shrunk schedule no longer fails");
      print_divergence(shrunk.schedule, *confirm.divergence);
      std::printf("shrunk to %zu ops (%zu emits) in %zu attempts\n",
                  shrunk.schedule.ops.size(), shrunk.schedule.emit_count(),
                  shrunk.attempts);

      std::filesystem::create_directories(out_dir);
      const std::string path = out_dir + "/" + shrunk.schedule.name + ".ctsim";
      save_replay(path, shrunk.schedule);
      std::printf(
          "replay saved: %s\nreproduce with: %s --replay=%s --policy=%s "
          "--sync-every=%zu --segment-bytes=%zu --torn-samples=%zu "
          "--short-samples=%zu --rot-samples=%zu --stale-samples=%zu "
          "--seed=%llu\n",
          path.c_str(), args.program().c_str(), path.c_str(),
          to_string(params.policy), params.sync_every, params.segment_bytes,
          params.torn_samples, params.short_samples, params.rot_samples,
          params.stale_samples,
          static_cast<unsigned long long>(params.seed));
      return 1;
    }

    std::printf(
        "durability OK: %zu schedules, %zu crash points "
        "(%zu sync boundaries, %zu mid-record), %llu records lost+accounted, "
        "%llu migrations committed (%llu rolled back), "
        "%zu generations published, ladder rungs mapped/snapshot/wal "
        "%zu/%zu/%zu, %zu snapshots quarantined, %llu checks, %.1fs "
        "[policy %s]\n",
        ran, points, sync_points, torn_points,
        static_cast<unsigned long long>(total_lost),
        static_cast<unsigned long long>(migrations),
        static_cast<unsigned long long>(rollbacks), generations, rung_mapped,
        rung_snapshot, rung_wal, quarantined,
        static_cast<unsigned long long>(total_checks), elapsed(),
        to_string(params.policy));
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "durability_driver: %s\n", ex.what());
    return 2;
  }
}

// Property tests for the tree-clock backend (timestamp/tree_clock.hpp):
// tree-clock ↔ vector-clock equivalence on randomly seeded schedules, join
// commutativity/idempotence/pointwise-max, and the monotone-copy invariant
// re-checked after every receive. The simcheck oracle re-proves answer
// identity against on-demand FM under faults; these tests pin the algebra
// of the data structure itself, with shapes validated by check_shape().
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "model/oracle.hpp"
#include "timestamp/fm_store.hpp"
#include "timestamp/query_cost.hpp"
#include "timestamp/tree_clock.hpp"
#include "timestamp/tree_clock_store.hpp"
#include "trace/generators.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

std::vector<Trace> property_traces(std::uint64_t seed) {
  std::vector<Trace> out;
  out.push_back(generate_uniform_random(
      {.processes = 10, .messages = 120, .seed = seed}));
  out.push_back(generate_locality_random(
      {.processes = 12, .group_size = 4, .messages = 100, .seed = seed + 1}));
  out.push_back(generate_rpc_business({.groups = 2,
                                       .clients_per_group = 2,
                                       .servers_per_group = 2,
                                       .calls = 50,
                                       .seed = seed + 2}));
  out.push_back(generate_ring({.processes = 8, .iterations = 5,
                               .seed = seed + 3}));
  out.push_back(generate_master_worker(
      {.processes = 9, .tasks = 30, .pods = 2, .seed = seed + 4}));
  return out;
}

std::vector<EventIndex> flat(const TreeClock& c) {
  std::vector<EventIndex> v(c.process_count());
  c.flatten_into(v.data(), v.size());
  return v;
}

void expect_shape_ok(const TreeClock& c, const char* where) {
  std::string why;
  EXPECT_TRUE(c.check_shape(&why)) << where << ": " << why;
}

// Satellite property 1: every event's flattened tree clock equals the
// Fidge/Mattern vector FmStore computes, in both storage layouts, and the
// derived precedence/concurrency answers match the ground-truth oracle.
TEST(TreeClockStore, FlattenedClocksMatchVectorClocks) {
  for (const Trace& t : property_traces(101)) {
    const FmStore ref(t);
    for (const bool arena : {false, true}) {
      const TreeClockStore store(t, arena);
      for (const EventId e : t.delivery_order()) {
        ASSERT_EQ(store.clock(e), ref.clock(e))
            << "event P" << e.process << "." << e.index
            << " arena=" << arena;
      }
    }
  }
}

TEST(TreeClockStore, PrecedenceMatchesOracleOnSampledPairs) {
  Prng rng(7);
  for (const Trace& t : property_traces(202)) {
    const CausalityOracle oracle(t);
    const TreeClockStore store(t, /*use_arena=*/true);
    const std::vector<EventId> events = {t.delivery_order().begin(),
                                         t.delivery_order().end()};
    for (int i = 0; i < 400; ++i) {
      const EventId e = rng.pick(events);
      const EventId f = rng.pick(events);
      ASSERT_EQ(store.precedes(e, f), oracle.happened_before(e, f))
          << "P" << e.process << "." << e.index << " vs P" << f.process << "."
          << f.index;
      ASSERT_EQ(store.concurrent(e, f), oracle.concurrent(e, f));
      // dominated_by is precedence-or-equality over full rows.
      const bool dom = store.dominated_by(e, f);
      const bool expected =
          e == f || oracle.happened_before(e, f) ||
          (t.event(e).kind == EventKind::kSync && t.event(e).partner == f);
      ASSERT_EQ(dom, expected);
    }
  }
}

// Satellite property 2: join is commutative and idempotent up to the
// flattened mapping, computes the pointwise max, and always leaves a valid
// tree shape.
TEST(TreeClock, JoinCommutativeIdempotentAndPointwiseMax) {
  Prng rng(11);
  for (const Trace& t : property_traces(303)) {
    const TreeClockStore store(t, /*use_arena=*/true);
    const std::size_t n = t.process_count();
    for (int round = 0; round < 50; ++round) {
      const ProcessId p = static_cast<ProcessId>(rng.index(n));
      const ProcessId q = static_cast<ProcessId>(rng.index(n));
      const TreeClock& a = store.final_clock(p);
      const TreeClock& b = store.final_clock(q);

      TreeClock ab = a;
      ab.join(b);
      TreeClock ba = b;
      ba.join(a);
      expect_shape_ok(ab, "a.join(b)");
      expect_shape_ok(ba, "b.join(a)");

      const auto fa = flat(a), fb = flat(b);
      std::vector<EventIndex> expected(n);
      for (std::size_t i = 0; i < n; ++i) {
        expected[i] = std::max(fa[i], fb[i]);
      }
      ASSERT_EQ(flat(ab), expected) << "join is not the pointwise max";
      ASSERT_EQ(flat(ba), expected) << "join is not commutative (flattened)";

      // Idempotence: joining again (either operand) changes nothing.
      TreeClock again = ab;
      again.join(b);
      again.join(a);
      again.join(ab);
      ASSERT_EQ(flat(again), expected);
      expect_shape_ok(again, "idempotent re-join");
    }
  }
}

// Satellite property 3: the monotone-copy invariant, checked after EVERY
// receive — each process's flattened clock only ever grows pointwise, and
// the tree shape stays valid at every step of ingestion.
TEST(TreeClockStore, MonotoneCopyInvariantHoldsAfterEveryReceive) {
  for (const Trace& t : property_traces(404)) {
    std::vector<std::vector<EventIndex>> last(t.process_count());
    std::size_t hooks = 0;
    TreeClockStore::EventHook hook = [&](const Event& e, const TreeClock& c) {
      ++hooks;
      std::string why;
      ASSERT_TRUE(c.check_shape(&why))
          << "after P" << e.id.process << "." << e.id.index << ": " << why;
      const auto now = flat(c);
      auto& prev = last[e.id.process];
      if (!prev.empty()) {
        for (std::size_t i = 0; i < now.size(); ++i) {
          ASSERT_GE(now[i], prev[i])
              << "component " << i << " regressed at P" << e.id.process << "."
              << e.id.index;
        }
      }
      ASSERT_EQ(now[e.id.process], e.id.index)
          << "own component must equal the event index";
      prev = now;
    };
    const TreeClockStore store(t, /*use_arena=*/false, hook);
    ASSERT_EQ(hooks, t.event_count());
  }
}

TEST(TreeClockStore, SyncHalvesCarryEqualClocksAndAreConcurrent) {
  for (const Trace& t : property_traces(505)) {
    const TreeClockStore store(t, /*use_arena=*/true);
    std::size_t syncs = 0;
    for (const EventId id : t.delivery_order()) {
      const Event& e = t.event(id);
      if (e.kind != EventKind::kSync) continue;
      ++syncs;
      ASSERT_EQ(store.clock(id), store.clock(e.partner));
      ASSERT_FALSE(store.precedes(id, e.partner));
      ASSERT_FALSE(store.precedes(e.partner, id));
      ASSERT_TRUE(store.concurrent(id, e.partner));
    }
    if (t.name().find("rpc") != std::string::npos) {
      EXPECT_GT(syncs, 0u) << "expected sync events in " << t.name();
    }
  }
}

TEST(TreeClock, TickBumpAndDominationBasics) {
  TreeClock a(4, /*root=*/0);
  EXPECT_EQ(a.root_clk(), 0u);
  a.tick();
  a.tick();
  EXPECT_EQ(a.get(0), 2u);
  EXPECT_EQ(a.node_count(), 1u);

  // bump attaches an unknown process under the root...
  a.bump(2, 5);
  EXPECT_EQ(a.get(2), 5u);
  EXPECT_TRUE(a.in_tree(2));
  EXPECT_EQ(a.parent_of(2), 0);
  EXPECT_EQ(a.node_count(), 2u);
  // ...and raises a known one in place.
  a.bump(2, 7);
  EXPECT_EQ(a.get(2), 7u);
  EXPECT_EQ(a.node_count(), 2u);
  expect_shape_ok(a, "after bumps");

  TreeClock b(4, /*root=*/1);
  b.tick();
  b.join(a);
  expect_shape_ok(b, "after join");
  EXPECT_EQ(b.get(0), 2u);
  EXPECT_EQ(b.get(1), 1u);
  EXPECT_EQ(b.get(2), 7u);
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_FALSE(b.dominated_by(a));  // b knows its own tick; a does not
}

TEST(TreeClock, JoinStatsCountPrunedSubtrees) {
  const Trace t = generate_uniform_random(
      {.processes = 12, .messages = 150, .seed = 31});
  const TreeClockStore store(t, /*use_arena=*/true);
  const TreeClock::JoinStats& s = store.costs().join;
  EXPECT_GT(s.joins, 0u);
  EXPECT_GT(s.nodes_updated, 0u);
  // The whole point of the structure: joins touch fewer entries than the
  // vector-clock Θ(N) bound would.
  EXPECT_LT(s.nodes_examined, s.joins * t.process_count());
}

TEST(TreeClockStore, MeteredPrecedenceHonorsBudgetAndMatchesUnmetered) {
  const Trace t = generate_rpc_chain(
      {.services = 6, .chain_length = 3, .requests = 20, .seed = 17});
  const TreeClockStore store(t, /*use_arena=*/true);
  const std::vector<EventId> events = {t.delivery_order().begin(),
                                       t.delivery_order().end()};
  Prng rng(23);
  for (int i = 0; i < 100; ++i) {
    const EventId e = rng.pick(events);
    const EventId f = rng.pick(events);
    QueryCost unlimited;
    const auto answer = store.precedes_metered(e, f, unlimited);
    ASSERT_TRUE(answer.has_value());
    ASSERT_EQ(*answer, store.precedes(e, f));
  }
  // A budget that is already exhausted cannot produce an answer.
  QueryCost spent;
  spent.budget = 1;
  ASSERT_TRUE(spent.charge(1));
  ASSERT_FALSE(store.precedes_metered(events[0], events[1], spent).has_value());
}

TEST(TreeClockStore, StateDigestIsLayoutIndependent) {
  for (const Trace& t : property_traces(606)) {
    const TreeClockStore arena(t, /*use_arena=*/true);
    const TreeClockStore legacy(t, /*use_arena=*/false);
    EXPECT_EQ(arena.state_digest(), legacy.state_digest()) << t.name();
    EXPECT_EQ(arena.stored_elements(), legacy.stored_elements());
    EXPECT_LE(arena.resident_elements(), legacy.resident_elements());
  }
}

}  // namespace
}  // namespace ct

// Tests for the §5 future-work extensions: the generalized recursive
// precedence test, process migration, multi-level hierarchies, and the
// phase-shifting locality workload.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "cluster/comm_matrix.hpp"
#include "core/engine.hpp"
#include "core/hierarchy.hpp"
#include "core/migrating_engine.hpp"
#include "core/recursive_precedence.hpp"
#include "model/oracle.hpp"
#include "model/trace_builder.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ct {
namespace {

Trace property_trace(int which) {
  switch (which) {
    case 0:
      return generate_ring({.processes = 10, .iterations = 9, .seed = 242});
    case 1:
      return generate_web_server({.clients = 12,
                                  .servers = 3,
                                  .backends = 2,
                                  .requests = 55,
                                  .seed = 244});
    case 2:
      return generate_rpc_business({.groups = 3,
                                    .clients_per_group = 3,
                                    .servers_per_group = 2,
                                    .calls = 60,
                                    .seed = 245});
    case 3:
      return generate_uniform_random(
          {.processes = 12, .messages = 110, .seed = 246});
    case 4:
      return generate_locality_random({.processes = 18,
                                       .group_size = 6,
                                       .messages = 130,
                                       .seed = 247});
    case 5:
      return generate_phased_locality({.processes = 16,
                                       .group_size = 4,
                                       .phases = 3,
                                       .messages_per_phase = 60,
                                       .seed = 248});
    default:
      CT_CHECK(false);
      return {};
  }
}

// ---------------------------------------------------- recursive precedence

// The recursive test must agree with the oracle when driven by the BASE
// engine's timestamps (merge-only clusters), across strategies and sizes.
class RecursiveTestProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecursiveTestProperty, AgreesWithOracleOnBaseEngine) {
  const Trace trace = property_trace(GetParam());
  const CausalityOracle oracle(trace);
  for (const std::size_t max_cs : {std::size_t{2}, std::size_t{6}}) {
    ClusterEngineConfig config{.max_cluster_size = max_cs,
                               .fm_vector_width = 300};
    ClusterTimestampEngine engine(trace.process_count(), config,
                                  make_merge_on_nth(1.0));
    engine.observe_trace(trace);
    const TimestampLookup lookup = [&](EventId id) -> const ClusterTimestamp& {
      return engine.timestamp(id);
    };
    for (const EventId e : trace.delivery_order()) {
      for (const EventId f : trace.delivery_order()) {
        const bool want = oracle.happened_before(e, f);
        ASSERT_EQ(recursive_precedes(trace.event(e), trace.event(f),
                                     trace.process_count(), lookup),
                  want)
            << "recursive: " << e << " -> " << f << " maxCS " << max_cs;
        // And it agrees with the fast test.
        ASSERT_EQ(engine.precedes(trace.event(e), trace.event(f)), want);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, RecursiveTestProperty,
                         ::testing::Range(0, 6));

TEST(RecursiveTest, CountsComparisons) {
  const Trace trace = property_trace(0);
  ClusterEngineConfig config{.max_cluster_size = 3, .fm_vector_width = 300};
  ClusterTimestampEngine engine(trace.process_count(), config,
                                make_merge_on_first());
  engine.observe_trace(trace);
  std::uint64_t comparisons = 0;
  const auto order = trace.delivery_order();
  (void)recursive_precedes(
      trace.event(order.front()), trace.event(order.back()),
      trace.process_count(),
      [&](EventId id) -> const ClusterTimestamp& {
        return engine.timestamp(id);
      },
      &comparisons);
  EXPECT_GT(comparisons, 0u);
}

// ------------------------------------------------------------- migration

class MigrationProperty : public ::testing::TestWithParam<int> {};

TEST_P(MigrationProperty, PrecedenceMatchesOracle) {
  const Trace trace = property_trace(GetParam());
  const CausalityOracle oracle(trace);
  // Aggressive migration settings to exercise the machinery hard.
  MigratingEngineConfig config;
  config.max_cluster_size = 5;
  config.fm_vector_width = 300;
  config.nth_threshold = 0.5;
  config.window = 6;
  config.home_share_low = 0.95;  // migrate eagerly
  config.cooldown = 0;
  MigratingClusterEngine engine(trace.process_count(), config);
  engine.observe_trace(trace);
  for (const EventId e : trace.delivery_order()) {
    for (const EventId f : trace.delivery_order()) {
      ASSERT_EQ(engine.precedes(trace.event(e), trace.event(f)),
                oracle.happened_before(e, f))
          << e << " vs " << f << " in " << trace.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, MigrationProperty,
                         ::testing::Range(0, 6));

TEST(Migration, ActuallyMigratesOnPhaseShift) {
  const Trace trace = generate_phased_locality({.processes = 24,
                                                .group_size = 6,
                                                .intra_rate = 0.95,
                                                .phases = 2,
                                                .messages_per_phase = 900,
                                                .seed = 9});
  MigratingEngineConfig config;
  config.max_cluster_size = 8;  // headroom above the natural group size
  config.fm_vector_width = 300;
  config.nth_threshold = 2.0;
  MigratingClusterEngine engine(trace.process_count(), config);
  engine.observe_trace(trace);
  EXPECT_GT(engine.migrations(), 0u)
      << "phase shift should trigger migrations";
}

TEST(Migration, BeatsFrozenClustersOnPhasedWorkload) {
  const Trace trace = generate_phased_locality({.processes = 36,
                                                .group_size = 6,
                                                .intra_rate = 0.95,
                                                .phases = 2,
                                                .messages_per_phase = 1800,
                                                .seed = 10});
  MigratingEngineConfig mig_config;
  mig_config.max_cluster_size = 8;
  mig_config.fm_vector_width = 300;
  mig_config.nth_threshold = 2.0;
  MigratingClusterEngine migrating(trace.process_count(), mig_config);
  migrating.observe_trace(trace);

  ClusterEngineConfig frozen_config{.max_cluster_size = 8,
                                    .fm_vector_width = 300};
  ClusterTimestampEngine frozen(trace.process_count(), frozen_config,
                                make_merge_on_nth(2.0));
  frozen.observe_trace(trace);

  EXPECT_LT(migrating.stats().encoded_words, frozen.stats().encoded_words)
      << "migration should shed cluster receives after the phase shift";
}

TEST(Migration, StatsAreCoherent) {
  const Trace trace = property_trace(4);
  MigratingEngineConfig config;
  config.max_cluster_size = 6;
  config.fm_vector_width = 300;
  MigratingClusterEngine engine(trace.process_count(), config);
  engine.observe_trace(trace);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.events, trace.event_count());
  EXPECT_LE(stats.largest_cluster, 6u);
  EXPECT_GE(stats.final_clusters, 1u);
  EXPECT_LE(stats.exact_words, stats.encoded_words);
}

TEST(Migration, RejectsBadConfig) {
  MigratingEngineConfig config;
  config.max_cluster_size = 0;
  EXPECT_THROW(MigratingClusterEngine(4, config), CheckFailure);
  config.max_cluster_size = 4;
  config.home_share_low = 0.0;  // must be in (0, 1]
  EXPECT_THROW(MigratingClusterEngine(4, config), CheckFailure);
}

// ------------------------------------------------------------- hierarchy

TEST(Hierarchy, BuildProducesNestedPartitions) {
  const Trace trace = generate_locality_random({.processes = 48,
                                                .group_size = 6,
                                                .intra_rate = 0.9,
                                                .messages = 2000,
                                                .seed = 21});
  const CommMatrix comm(trace);
  const std::array<std::size_t, 2> sizes{6, 24};
  const Hierarchy h = build_hierarchy(comm, sizes);
  ASSERT_EQ(h.depth(), 2u);
  h.validate(trace.process_count());
  for (const auto& part : h.levels[0]) EXPECT_LE(part.size(), 6u);
  for (const auto& part : h.levels[1]) EXPECT_LE(part.size(), 24u);
  EXPECT_LT(h.levels[1].size(), h.levels[0].size());
}

TEST(Hierarchy, ValidateCatchesBrokenNesting) {
  Hierarchy h;
  h.levels.push_back({{0, 1}, {2, 3}});
  h.levels.push_back({{0, 2}, {1, 3}});  // splits both level-0 clusters
  EXPECT_THROW(h.validate(4), CheckFailure);

  Hierarchy incomplete;
  incomplete.levels.push_back({{0, 1}});  // missing process 2
  EXPECT_THROW(incomplete.validate(3), CheckFailure);
}

class HierarchyProperty : public ::testing::TestWithParam<int> {};

TEST_P(HierarchyProperty, PrecedenceMatchesOracle) {
  const Trace trace = property_trace(GetParam());
  const CausalityOracle oracle(trace);
  const CommMatrix comm(trace);
  const std::array<std::size_t, 2> sizes{3, 8};
  HierarchicalStaticEngine engine(trace.process_count(), 300,
                                  build_hierarchy(comm, sizes));
  engine.observe_trace(trace);
  for (const EventId e : trace.delivery_order()) {
    for (const EventId f : trace.delivery_order()) {
      ASSERT_EQ(engine.precedes(trace.event(e), trace.event(f)),
                oracle.happened_before(e, f))
          << e << " vs " << f << " in " << trace.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, HierarchyProperty,
                         ::testing::Range(0, 6));

TEST(Hierarchy, IntermediateLevelsReduceFullVectors) {
  const Trace trace = generate_locality_random({.processes = 96,
                                                .group_size = 8,
                                                .intra_rate = 0.85,
                                                .messages = 4000,
                                                .seed = 22});
  const CommMatrix comm(trace);

  const std::array<std::size_t, 1> two_level{8};
  HierarchicalStaticEngine flat(trace.process_count(), 300,
                                build_hierarchy(comm, two_level));
  flat.observe_trace(trace);

  const std::array<std::size_t, 2> three_level{8, 32};
  HierarchicalStaticEngine deep(trace.process_count(), 300,
                                build_hierarchy(comm, three_level));
  deep.observe_trace(trace);

  // The extra level absorbs some would-be full vectors at width ≤ 32.
  const auto& f = flat.stats();
  const auto& d = deep.stats();
  EXPECT_EQ(f.events, d.events);
  EXPECT_LT(d.events_by_level.back(), f.events_by_level.back())
      << "fewer events should escape to full FM with an extra level";
  EXPECT_LT(d.encoded_words, f.encoded_words);
}

TEST(Hierarchy, StatsAccounting) {
  TraceBuilder b;
  b.add_processes(4);
  b.message(0, 1);  // within level-0 cluster {0,1}
  b.message(2, 0);  // crosses level 0, within level 1
  const Trace trace = b.build("hier-acct", TraceFamily::kControl);

  Hierarchy h;
  h.levels.push_back({{0, 1}, {2}, {3}});
  h.levels.push_back({{0, 1, 2}, {3}});
  HierarchicalStaticEngine engine(4, 300, std::move(h));
  engine.observe_trace(trace);
  const auto& stats = engine.stats();
  EXPECT_EQ(stats.events, 4u);
  EXPECT_EQ(stats.events_by_level[0], 3u);  // 2 sends + intra receive
  EXPECT_EQ(stats.events_by_level[1], 1u);  // the cross receive
  EXPECT_EQ(stats.events_by_level[2], 0u);  // nothing escapes level 1
  EXPECT_EQ(stats.level_widths[0], 2u);
  EXPECT_EQ(stats.level_widths[1], 3u);
  EXPECT_EQ(stats.level_widths[2], 300u);
  EXPECT_EQ(stats.encoded_words, 3u * 2 + 1u * 3);
}

// ------------------------------------------------------ phased generator

TEST(PhasedLocality, StructurallyValidAndDeterministic) {
  const PhasedLocalityOptions opt{.processes = 20,
                                  .group_size = 5,
                                  .phases = 3,
                                  .messages_per_phase = 100,
                                  .seed = 31};
  const Trace a = generate_phased_locality(opt);
  const Trace b = generate_phased_locality(opt);
  ASSERT_EQ(a.event_count(), b.event_count());
  const auto ao = a.delivery_order();
  const auto bo = b.delivery_order();
  for (std::size_t i = 0; i < ao.size(); ++i) ASSERT_EQ(ao[i], bo[i]);
  EXPECT_EQ(a.family(), TraceFamily::kControl);
  EXPECT_GT(a.count(EventKind::kReceive), 0u);
}

TEST(PhasedLocality, CommunicationStructureShiftsAcrossPhases) {
  // With one phase, the comm graph concentrates on ~group_size partners per
  // process; with several phases each process accumulates partners from
  // every phase's group.
  const Trace single = generate_phased_locality({.processes = 30,
                                                 .group_size = 6,
                                                 .intra_rate = 0.95,
                                                 .phases = 1,
                                                 .messages_per_phase = 3000,
                                                 .seed = 32});
  const Trace multi = generate_phased_locality({.processes = 30,
                                                .group_size = 6,
                                                .intra_rate = 0.95,
                                                .phases = 3,
                                                .messages_per_phase = 1000,
                                                .seed = 32});
  // Count *strong* partners (≥ 5 occurrences): spillover noise touches
  // almost everyone, but heavy traffic concentrates on the phase groups.
  const auto mean_partners = [](const Trace& t) {
    const CommMatrix comm(t);
    double total = 0;
    for (ProcessId p = 0; p < t.process_count(); ++p) {
      for (ProcessId q = 0; q < t.process_count(); ++q) {
        total += comm.occurrences(p, q) >= 5;
      }
    }
    return total / static_cast<double>(t.process_count());
  };
  EXPECT_GT(mean_partners(multi), mean_partners(single) * 1.5);
}

}  // namespace
}  // namespace ct

// Tests for ct_core — the cluster-timestamp engine.
//
// The central property of the whole reproduction: for EVERY clustering
// strategy, EVERY maxCS, and every trace family, the cluster-timestamp
// precedence test must agree with the happened-before oracle on all event
// pairs. Space savings mean nothing if precedence answers change.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "cluster/comm_matrix.hpp"
#include "cluster/fixed_contiguous.hpp"
#include "cluster/kmedoid.hpp"
#include "cluster/static_greedy.hpp"
#include "core/batch_hybrid.hpp"
#include "core/engine.hpp"
#include "core/static_pipeline.hpp"
#include "model/oracle.hpp"
#include "model/trace_builder.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ct {
namespace {

Trace property_trace(int which) {
  switch (which) {
    case 0:
      return generate_ring({.processes = 10, .iterations = 9, .seed = 142});
    case 1:
      return generate_scatter_gather(
          {.processes = 9, .rounds = 7, .seed = 143});
    case 2:
      return generate_web_server({.clients = 12,
                                  .servers = 3,
                                  .backends = 2,
                                  .requests = 55,
                                  .seed = 144});
    case 3:
      return generate_rpc_business({.groups = 3,
                                    .clients_per_group = 3,
                                    .servers_per_group = 2,
                                    .calls = 60,
                                    .seed = 145});
    case 4:
      return generate_uniform_random(
          {.processes = 12, .messages = 110, .seed = 146});
    case 5:
      return generate_locality_random({.processes = 18,
                                       .group_size = 6,
                                       .messages = 130,
                                       .seed = 147});
    case 6:
      return generate_pubsub({.publishers = 4,
                              .brokers = 2,
                              .subscribers = 8,
                              .topics = 4,
                              .subscribers_per_topic = 3,
                              .messages = 35,
                              .seed = 148});
    case 7:
      return generate_rpc_chain(
          {.services = 9, .chain_length = 4, .requests = 22, .seed = 149});
    default:
      CT_CHECK(false);
      return {};
  }
}

void expect_matches_oracle(const Trace& trace, const CausalityOracle& oracle,
                           ClusterTimestampEngine& engine,
                           const std::string& label) {
  engine.observe_trace(trace);
  for (const EventId e : trace.delivery_order()) {
    for (const EventId f : trace.delivery_order()) {
      const bool got = engine.precedes(trace.event(e), trace.event(f));
      const bool want = oracle.happened_before(e, f);
      ASSERT_EQ(got, want) << label << ": e=" << e << " f=" << f << " in "
                           << trace.name();
    }
  }
}

class EnginePrecedenceProperty : public ::testing::TestWithParam<int> {};

TEST_P(EnginePrecedenceProperty, AllStrategiesAllSizesMatchOracle) {
  const Trace trace = property_trace(GetParam());
  const CausalityOracle oracle(trace);
  const std::size_t n = trace.process_count();

  for (const std::size_t max_cs : {std::size_t{1}, std::size_t{2},
                                   std::size_t{5}, std::size_t{13},
                                   std::size_t{64}}) {
    ClusterEngineConfig config;
    config.max_cluster_size = max_cs;
    config.fm_vector_width = 300;

    {
      ClusterTimestampEngine engine(n, config, make_merge_on_first());
      expect_matches_oracle(trace, oracle, engine,
                            "merge-on-1st maxCS=" + std::to_string(max_cs));
    }
    {
      ClusterTimestampEngine engine(n, config, make_merge_on_nth(0.5));
      expect_matches_oracle(trace, oracle, engine,
                            "Nth(0.5) maxCS=" + std::to_string(max_cs));
    }
    {
      ClusterTimestampEngine engine(n, config, make_merge_on_nth(3.0));
      expect_matches_oracle(trace, oracle, engine,
                            "Nth(3) maxCS=" + std::to_string(max_cs));
    }
    {
      const auto partition = static_greedy_clusters(
          CommMatrix(trace), {.max_cluster_size = max_cs});
      ClusterTimestampEngine engine(n, config, partition);
      expect_matches_oracle(trace, oracle, engine,
                            "static-greedy maxCS=" + std::to_string(max_cs));
    }
    {
      const auto partition = fixed_contiguous_clusters(n, max_cs);
      ClusterTimestampEngine engine(n, config, partition);
      expect_matches_oracle(trace, oracle, engine,
                            "fixed maxCS=" + std::to_string(max_cs));
    }
  }

  // Unbounded k-medoid partition (encoded at its largest cluster).
  {
    const auto partition = kmedoid_clusters(CommMatrix(trace), {.k = 4});
    std::size_t largest = 1;
    for (const auto& c : partition) largest = std::max(largest, c.size());
    ClusterEngineConfig config;
    config.max_cluster_size = largest;
    config.fm_vector_width = 300;
    config.encoded_cluster_width = largest;
    ClusterTimestampEngine engine(n, config, partition);
    expect_matches_oracle(trace, oracle, engine, "k-medoid");
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, EnginePrecedenceProperty,
                         ::testing::Range(0, 8));

// ------------------------------------------------------- unit-level behaviour

TEST(Engine, MergeOnFirstMergesImmediately) {
  TraceBuilder b;
  b.add_processes(3);
  b.message(0, 1);
  const Trace t = b.build("m1", TraceFamily::kControl);

  ClusterEngineConfig config{.max_cluster_size = 2, .fm_vector_width = 300};
  ClusterTimestampEngine engine(3, config, make_merge_on_first());
  engine.observe_trace(t);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.cluster_receives, 0u);  // the receive triggered the merge
  EXPECT_EQ(stats.final_clusters, 2u);
  // The receive's timestamp covers the merged cluster {0,1}.
  const auto& ts = engine.timestamp(EventId{1, 1});
  ASSERT_FALSE(ts.is_full());
  EXPECT_EQ(*ts.covered, (std::vector<ProcessId>{0, 1}));
}

TEST(Engine, SizeBoundBlocksMergeAndKeepsFullVector) {
  TraceBuilder b;
  b.add_processes(3);
  b.message(0, 1);  // merges {0,1} at maxCS=2
  b.message(2, 0);  // cannot merge {0,1}+{2} at maxCS=2 → cluster receive
  const Trace t = b.build("blocked", TraceFamily::kControl);

  ClusterEngineConfig config{.max_cluster_size = 2, .fm_vector_width = 300};
  ClusterTimestampEngine engine(3, config, make_merge_on_first());
  engine.observe_trace(t);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_EQ(stats.cluster_receives, 1u);
  const auto& cr = engine.timestamp(EventId{0, 2});
  EXPECT_TRUE(cr.is_full());
  EXPECT_TRUE(cr.cluster_receive);
  EXPECT_EQ(cr.values.size(), 3u);
}

TEST(Engine, EncodedWordsFollowPaperConvention) {
  TraceBuilder b;
  b.add_processes(3);
  b.message(0, 1);  // 2 events, merge
  b.message(2, 0);  // send (1 event) + blocked cluster receive (1 event)
  const Trace t = b.build("words", TraceFamily::kControl);

  ClusterEngineConfig config{.max_cluster_size = 2, .fm_vector_width = 300};
  ClusterTimestampEngine engine(3, config, make_merge_on_first());
  engine.observe_trace(t);
  const auto stats = engine.stats();
  // 3 projection events at width maxCS=2, 1 cluster receive at width 300.
  EXPECT_EQ(stats.encoded_words, 3u * 2u + 300u);
  EXPECT_DOUBLE_EQ(stats.average_ratio(300), (3.0 * 2 + 300) / (4 * 300.0));
  // Exact words: send(0.1)=1 wait—projections: {0,1} events have covered
  // sizes; verify via exact_words consistency instead of hand-count.
  EXPECT_LE(stats.exact_words, stats.encoded_words);
}

TEST(Engine, IntraClusterCommunicationNeverClusterReceive) {
  TraceBuilder b;
  b.add_processes(4);
  for (int i = 0; i < 10; ++i) b.message(0, 1);
  const Trace t = b.build("intra", TraceFamily::kControl);
  ClusterEngineConfig config{.max_cluster_size = 4, .fm_vector_width = 300};
  ClusterTimestampEngine engine(4, config,
                                std::vector<std::vector<ProcessId>>{
                                    {0, 1}, {2}, {3}});
  engine.observe_trace(t);
  EXPECT_EQ(engine.stats().cluster_receives, 0u);
}

TEST(Engine, StaticPartitionNeverMerges) {
  TraceBuilder b;
  b.add_processes(2);
  for (int i = 0; i < 5; ++i) b.message(0, 1);
  const Trace t = b.build("static", TraceFamily::kControl);
  ClusterEngineConfig config{.max_cluster_size = 2, .fm_vector_width = 300};
  ClusterTimestampEngine engine(
      2, config, std::vector<std::vector<ProcessId>>{{0}, {1}});
  engine.observe_trace(t);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(stats.cluster_receives, 5u);  // every receive crosses clusters
  EXPECT_EQ(stats.final_clusters, 2u);
}

TEST(Engine, SyncHalvesClassifiedConsistently) {
  TraceBuilder b;
  b.add_processes(4);
  b.sync(0, 1);  // mergeable at maxCS=2 → both halves projections
  b.sync(2, 3);  // merge {2,3}
  b.sync(1, 2);  // {0,1}+{2,3} exceeds maxCS=2 → BOTH halves cluster receives
  const Trace t = b.build("sync-cr", TraceFamily::kDce);

  ClusterEngineConfig config{.max_cluster_size = 2, .fm_vector_width = 300};
  ClusterTimestampEngine engine(4, config, make_merge_on_first());
  engine.observe_trace(t);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.merges, 2u);
  EXPECT_EQ(stats.cluster_receives, 2u);
  EXPECT_TRUE(engine.timestamp(EventId{1, 2}).cluster_receive);
  EXPECT_TRUE(engine.timestamp(EventId{2, 2}).cluster_receive);
  EXPECT_FALSE(engine.timestamp(EventId{0, 1}).cluster_receive);
  // Projection halves carry identical component values.
  EXPECT_EQ(engine.timestamp(EventId{1, 2}).values,
            engine.timestamp(EventId{2, 2}).values);
}

TEST(Engine, SyncPairCountsAsTwoOccurrencesForNth) {
  // Threshold 1 with singleton clusters (sizes 1+1): async needs 3 receives
  // (count > 2), sync needs 2 pairs (counts 2 then 4).
  TraceBuilder async_b;
  async_b.add_processes(2);
  async_b.message(0, 1);
  async_b.message(0, 1);
  const Trace async_t = async_b.build("async-nth", TraceFamily::kControl);
  ClusterEngineConfig config{.max_cluster_size = 2, .fm_vector_width = 300};
  {
    ClusterTimestampEngine engine(2, config, make_merge_on_nth(1.0));
    engine.observe_trace(async_t);
    EXPECT_EQ(engine.stats().merges, 0u);  // counts 1, 2 → ≤ 2, no merge
  }
  TraceBuilder sync_b;
  sync_b.add_processes(2);
  sync_b.sync(0, 1);
  sync_b.sync(0, 1);
  const Trace sync_t = sync_b.build("sync-nth", TraceFamily::kDce);
  {
    ClusterTimestampEngine engine(2, config, make_merge_on_nth(1.0));
    engine.observe_trace(sync_t);
    EXPECT_EQ(engine.stats().merges, 1u);  // counts 2 then 4 → merge
  }
}

TEST(Engine, RejectsBadConfigurations) {
  EXPECT_THROW(ClusterTimestampEngine(400,
                                      {.max_cluster_size = 5,
                                       .fm_vector_width = 300},
                                      make_merge_on_first()),
               CheckFailure);
  EXPECT_THROW(ClusterTimestampEngine(2,
                                      {.max_cluster_size = 0,
                                       .fm_vector_width = 300},
                                      make_merge_on_first()),
               CheckFailure);
  EXPECT_THROW(ClusterTimestampEngine(2,
                                      {.max_cluster_size = 2,
                                       .fm_vector_width = 300},
                                      std::unique_ptr<MergePolicy>{}),
               CheckFailure);
  // Partition with a cluster wider than the encoding width.
  EXPECT_THROW(ClusterTimestampEngine(
                   3, {.max_cluster_size = 2, .fm_vector_width = 300},
                   std::vector<std::vector<ProcessId>>{{0, 1, 2}}),
               CheckFailure);
}

TEST(Engine, RejectsQueriesAboutUnobservedEvents) {
  ClusterEngineConfig config{.max_cluster_size = 2, .fm_vector_width = 300};
  ClusterTimestampEngine engine(2, config, make_merge_on_first());
  EXPECT_THROW(engine.timestamp(EventId{0, 1}), CheckFailure);
}

TEST(Engine, ObserveTraceRejectsProcessMismatch) {
  TraceBuilder b;
  b.add_processes(3);
  b.unary(0);
  const Trace t = b.build("mismatch", TraceFamily::kControl);
  ClusterEngineConfig config{.max_cluster_size = 2, .fm_vector_width = 300};
  ClusterTimestampEngine engine(2, config, make_merge_on_first());
  EXPECT_THROW(engine.observe_trace(t), CheckFailure);
}

TEST(Engine, MaxCsOneEveryCrossReceiveIsFull) {
  const Trace t = generate_ring({.processes = 6, .iterations = 4, .seed = 3});
  ClusterEngineConfig config{.max_cluster_size = 1, .fm_vector_width = 300};
  ClusterTimestampEngine engine(6, config, make_merge_on_first());
  engine.observe_trace(t);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.merges, 0u);
  EXPECT_EQ(stats.cluster_receives, t.count(EventKind::kReceive));
}

TEST(Engine, RatioDecreasesWithGoodClustering) {
  // With planted locality, static greedy at the group size must beat maxCS=2.
  const Trace t = generate_locality_random({.processes = 36,
                                            .group_size = 6,
                                            .intra_rate = 0.95,
                                            .messages = 1500,
                                            .seed = 31});
  const double at_group = run_static(t, StaticStrategy::kGreedy, 6).ratio;
  const double tiny = run_static(t, StaticStrategy::kGreedy, 2).ratio;
  EXPECT_LT(at_group, tiny);
  EXPECT_LT(at_group, 0.5);  // order-of-magnitude-ish saving vs FM
}

TEST(Engine, ComparisonCounterAdvances) {
  const Trace t = property_trace(0);
  ClusterEngineConfig config{.max_cluster_size = 3, .fm_vector_width = 300};
  ClusterTimestampEngine engine(t.process_count(), config,
                                make_merge_on_first());
  engine.observe_trace(t);
  const auto order = t.delivery_order();
  (void)engine.precedes(t.event(order.front()), t.event(order.back()));
  EXPECT_GT(engine.comparisons(), 0u);
}

// -------------------------------------------------------------- batch hybrid

class BatchHybridProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(BatchHybridProperty, PrecedenceMatchesOracleInBothPhases) {
  const auto [which, batch] = GetParam();
  const Trace trace = property_trace(which);
  const CausalityOracle oracle(trace);

  BatchHybridConfig config;
  config.batch_size = batch;
  config.engine.max_cluster_size = 6;
  config.engine.fm_vector_width = 300;
  BatchHybridEngine engine(trace.process_count(), config);

  // Interleave observation with queries over the already-observed prefix,
  // crossing the phase-1 → phase-2 boundary.
  std::vector<EventId> seen;
  std::size_t step = 0;
  for (const EventId id : trace.delivery_order()) {
    engine.observe(trace.event(id));
    seen.push_back(id);
    if (++step % 7 == 0) {
      const EventId e = seen[step % seen.size()];
      const EventId f = seen[(step * 13) % seen.size()];
      ASSERT_EQ(engine.precedes(trace.event(e), trace.event(f)),
                oracle.happened_before(e, f))
          << e << " vs " << f << " at step " << step;
    }
  }
  engine.finish();
  ASSERT_TRUE(engine.clustered());
  for (const EventId e : trace.delivery_order()) {
    for (const EventId f : trace.delivery_order()) {
      ASSERT_EQ(engine.precedes(trace.event(e), trace.event(f)),
                oracle.happened_before(e, f))
          << e << " vs " << f;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchHybridProperty,
    ::testing::Combine(::testing::Values(0, 2, 3, 5),
                       ::testing::Values(std::size_t{1}, std::size_t{50},
                                         std::size_t{100000})));

TEST(BatchHybrid, TracksInterimCost) {
  const Trace t = property_trace(1);
  BatchHybridConfig config;
  config.batch_size = 40;
  config.engine.max_cluster_size = 5;
  BatchHybridEngine engine(t.process_count(), config);
  engine.observe_trace(t);
  EXPECT_EQ(engine.peak_interim_words(),
            static_cast<std::uint64_t>(40 * t.process_count()));
  EXPECT_FALSE(engine.partition().empty());
  EXPECT_EQ(engine.stats().events, t.event_count());
}

TEST(BatchHybrid, StatsBeforeClusteringRejected) {
  BatchHybridConfig config;
  config.batch_size = 100;
  config.engine.max_cluster_size = 4;
  BatchHybridEngine engine(4, config);
  EXPECT_THROW(engine.stats(), CheckFailure);
}

}  // namespace
}  // namespace ct

// Unit tests for ct_model: builder validation, trace accessors, and the
// transitive-closure oracle (including synchronous-pair semantics).
#include <gtest/gtest.h>

#include "model/oracle.hpp"
#include "model/trace_builder.hpp"
#include "util/check.hpp"

namespace ct {
namespace {

TEST(TraceBuilder, BuildsSimpleMessage) {
  TraceBuilder b;
  const ProcessId p0 = b.add_process();
  const ProcessId p1 = b.add_process();
  const auto [s, r] = b.message(p0, p1);
  const Trace t = b.build("two-proc", TraceFamily::kControl);

  EXPECT_EQ(t.process_count(), 2u);
  EXPECT_EQ(t.event_count(), 2u);
  EXPECT_EQ(t.event(s).kind, EventKind::kSend);
  EXPECT_EQ(t.event(s).partner, r);
  EXPECT_EQ(t.event(r).kind, EventKind::kReceive);
  EXPECT_EQ(t.event(r).partner, s);
  EXPECT_EQ(t.communication_occurrences(), 1u);
}

TEST(TraceBuilder, EventIndicesArePerProcessAndOneBased) {
  TraceBuilder b;
  const ProcessId p = b.add_process();
  EXPECT_EQ(b.unary(p), (EventId{p, 1}));
  EXPECT_EQ(b.unary(p), (EventId{p, 2}));
  EXPECT_EQ(b.process_size(p), 2u);
}

TEST(TraceBuilder, RejectsReceiveOfUnknownSend) {
  TraceBuilder b;
  b.add_processes(2);
  EXPECT_THROW(b.receive(1, EventId{0, 1}), CheckFailure);
}

TEST(TraceBuilder, RejectsReceiveOfNonSend) {
  TraceBuilder b;
  b.add_processes(2);
  const EventId u = b.unary(0);
  EXPECT_THROW(b.receive(1, u), CheckFailure);
}

TEST(TraceBuilder, RejectsDoubleReceive) {
  TraceBuilder b;
  b.add_processes(3);
  const EventId s = b.send(0);
  b.receive(1, s);
  EXPECT_THROW(b.receive(2, s), CheckFailure);
}

TEST(TraceBuilder, RejectsSelfSync) {
  TraceBuilder b;
  b.add_processes(1);
  EXPECT_THROW(b.sync(0, 0), CheckFailure);
}

TEST(TraceBuilder, TracksInFlightSends) {
  TraceBuilder b;
  b.add_processes(2);
  const EventId s1 = b.send(0);
  b.send(0);
  EXPECT_EQ(b.in_flight(), 2u);
  b.receive(1, s1);
  EXPECT_EQ(b.in_flight(), 1u);
  // Unreceived sends are permitted — messages still in transit at the end
  // of observation.
  const Trace t = b.build("in-flight", TraceFamily::kControl);
  EXPECT_EQ(t.count(EventKind::kSend), 2u);
  EXPECT_EQ(t.count(EventKind::kReceive), 1u);
}

TEST(TraceBuilder, SyncPairIsAdjacentInDeliveryOrder) {
  TraceBuilder b;
  b.add_processes(3);
  b.unary(0);
  const auto [a, c] = b.sync(1, 2);
  const Trace t = b.build("sync", TraceFamily::kDce);
  const auto order = t.delivery_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], a);
  EXPECT_EQ(order[2], c);
}

TEST(TraceBuilder, SyncCountsTwoCommunicationOccurrences) {
  TraceBuilder b;
  b.add_processes(2);
  b.sync(0, 1);
  const Trace t = b.build("sync2", TraceFamily::kDce);
  EXPECT_EQ(t.communication_occurrences(), 2u);
}

TEST(TraceBuilder, BuildResetsBuilder) {
  TraceBuilder b;
  b.add_processes(2);
  b.message(0, 1);
  (void)b.build("first", TraceFamily::kControl);
  // Builder is reusable and empty.
  EXPECT_EQ(b.process_count(), 0u);
  b.add_processes(1);
  b.unary(0);
  const Trace t2 = b.build("second", TraceFamily::kControl);
  EXPECT_EQ(t2.event_count(), 1u);
}

TEST(Trace, EventLookupRejectsOutOfRange) {
  TraceBuilder b;
  b.add_processes(1);
  b.unary(0);
  const Trace t = b.build("small", TraceFamily::kControl);
  EXPECT_THROW(t.event(EventId{0, 2}), CheckFailure);
  EXPECT_THROW(t.event(EventId{1, 1}), CheckFailure);
  EXPECT_THROW(t.process_events(3), CheckFailure);
}

// Figure-2-shaped fixture: three processes exchanging a few messages.
//   P0: a1 (send to P1), a2 (send to P2), a3 (recv from P1)
//   P1: b1 (recv from P0), b2 (send to P0)
//   P2: c1 (unary), c2 (recv from P0)
class SmallTraceOracle : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceBuilder b;
    b.add_processes(3);
    a1 = b.send(0);
    b1 = b.receive(1, a1);
    a2 = b.send(0);
    c1 = b.unary(2);
    c2 = b.receive(2, a2);
    b2 = b.send(1);
    a3 = b.receive(0, b2);
    trace = b.build("fig", TraceFamily::kControl);
    oracle = std::make_unique<CausalityOracle>(trace);
  }

  Trace trace;
  std::unique_ptr<CausalityOracle> oracle;
  EventId a1, a2, a3, b1, b2, c1, c2;
};

TEST_F(SmallTraceOracle, ProcessOrder) {
  EXPECT_TRUE(oracle->happened_before(a1, a2));
  EXPECT_TRUE(oracle->happened_before(a1, a3));
  EXPECT_FALSE(oracle->happened_before(a2, a1));
}

TEST_F(SmallTraceOracle, MessageOrder) {
  EXPECT_TRUE(oracle->happened_before(a1, b1));
  EXPECT_TRUE(oracle->happened_before(a1, b2));
  EXPECT_TRUE(oracle->happened_before(a1, a3));  // via P1 round trip
  EXPECT_TRUE(oracle->happened_before(a2, c2));
}

TEST_F(SmallTraceOracle, Concurrency) {
  EXPECT_TRUE(oracle->concurrent(b1, c1));
  EXPECT_TRUE(oracle->concurrent(c1, a1));
  EXPECT_TRUE(oracle->concurrent(b2, c2));
  EXPECT_FALSE(oracle->concurrent(a1, a1));  // same event
}

TEST_F(SmallTraceOracle, Irreflexive) {
  for (const EventId e : {a1, a2, a3, b1, b2, c1, c2}) {
    EXPECT_FALSE(oracle->happened_before(e, e));
  }
}

TEST(Oracle, SyncPairSemantics) {
  TraceBuilder b;
  b.add_processes(3);
  const EventId x = b.unary(0);
  const auto [s0, s1] = b.sync(0, 1);
  const EventId y = b.unary(1);
  const EventId z = b.unary(2);
  const Trace t = b.build("sync-sem", TraceFamily::kDce);
  const CausalityOracle oracle(t);

  // Halves are mutually concurrent…
  EXPECT_FALSE(oracle.happened_before(s0, s1));
  EXPECT_FALSE(oracle.happened_before(s1, s0));
  EXPECT_TRUE(oracle.concurrent(s0, s1));
  // …but share history and future.
  EXPECT_TRUE(oracle.happened_before(x, s0));
  EXPECT_TRUE(oracle.happened_before(x, s1));
  EXPECT_TRUE(oracle.happened_before(x, y));
  EXPECT_TRUE(oracle.happened_before(s0, y));
  EXPECT_TRUE(oracle.happened_before(s1, y));
  EXPECT_TRUE(oracle.concurrent(z, s0));
}

TEST(Oracle, SyncChainsTransitively) {
  TraceBuilder b;
  b.add_processes(3);
  const auto [a, a2] = b.sync(0, 1);
  const auto [c, c2] = b.sync(1, 2);
  const Trace t = b.build("sync-chain", TraceFamily::kDce);
  const CausalityOracle oracle(t);
  (void)a2;
  // First rendezvous precedes the second (P1 participates in both).
  EXPECT_TRUE(oracle.happened_before(a, c));
  EXPECT_TRUE(oracle.happened_before(a, c2));
}

TEST(Oracle, RejectsOversizedTrace) {
  TraceBuilder b;
  b.add_processes(1);
  for (int i = 0; i < 100; ++i) b.unary(0);
  const Trace t = b.build("big", TraceFamily::kControl);
  EXPECT_THROW(CausalityOracle(t, /*max_nodes=*/50), CheckFailure);
}

TEST(TraceFamilies, ToString) {
  EXPECT_STREQ(to_string(TraceFamily::kPvm), "PVM");
  EXPECT_STREQ(to_string(TraceFamily::kJava), "Java");
  EXPECT_STREQ(to_string(TraceFamily::kDce), "DCE");
  EXPECT_STREQ(to_string(TraceFamily::kControl), "control");
}

}  // namespace
}  // namespace ct

// Tests for the extended generator set (butterfly / gossip / token ring),
// the binary trace format, and the varint codec.
#include <gtest/gtest.h>

#include <sstream>

#include "model/oracle.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"
#include "util/varint.hpp"

namespace ct {
namespace {

// ------------------------------------------------------------- generators

TEST(Butterfly, XorPartnersOnly) {
  const Trace t = generate_butterfly({.dimensions = 4, .sweeps = 3});
  EXPECT_EQ(t.process_count(), 16u);
  for (ProcessId p = 0; p < 16; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind != EventKind::kReceive) continue;
      const ProcessId q = e.partner.process;
      const ProcessId x = p ^ q;
      EXPECT_EQ(x & (x - 1), 0u) << "partner not a power-of-two stride";
      EXPECT_NE(x, 0u);
    }
  }
  // Every process exchanges once per round per dimension.
  EXPECT_EQ(t.count(EventKind::kReceive), 16u * 4 * 3);
}

TEST(Butterfly, FullSweepConnectsEveryone) {
  const Trace t = generate_butterfly({.dimensions = 3, .sweeps = 1});
  const CausalityOracle oracle(t);
  // After one full butterfly, the last event of process 0 depends on some
  // event of every process.
  const EventId last{0, t.process_size(0)};
  for (ProcessId q = 0; q < 8; ++q) {
    EXPECT_TRUE(oracle.happened_before(EventId{q, 1}, last))
        << "process " << q << " not reached";
  }
}

TEST(Gossip, OneSendPerProcessPerRound) {
  const Trace t =
      generate_gossip({.processes = 12, .rounds = 10, .seed = 33});
  EXPECT_EQ(t.count(EventKind::kSend), 120u);
  EXPECT_EQ(t.count(EventKind::kReceive), 120u);
  for (ProcessId p = 0; p < 12; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind == EventKind::kReceive) {
        EXPECT_NE(e.partner.process, p);  // no self-gossip
      }
    }
  }
}

TEST(TokenRing, StrictlySequentialToken) {
  const Trace t =
      generate_token_ring({.processes = 6, .laps = 4, .critical_events = 1});
  const CausalityOracle oracle(t);
  // The token makes everything totally ordered: no two communication
  // events are concurrent.
  const auto order = t.delivery_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      EXPECT_TRUE(oracle.happened_before(order[i], order[j]) ||
                  order[i].process == order[j].process)
          << order[i] << " vs " << order[j];
    }
  }
}

// ----------------------------------------------------------- binary format

void expect_traces_equal(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.family(), b.family());
  ASSERT_EQ(a.process_count(), b.process_count());
  ASSERT_EQ(a.event_count(), b.event_count());
  const auto ao = a.delivery_order();
  const auto bo = b.delivery_order();
  for (std::size_t i = 0; i < ao.size(); ++i) {
    ASSERT_EQ(ao[i], bo[i]);
    ASSERT_EQ(a.event(ao[i]), b.event(bo[i]));
  }
}

TEST(BinaryTrace, RoundTripsAsyncAndSync) {
  for (const Trace& t :
       {generate_web_server({.clients = 8,
                             .servers = 2,
                             .backends = 1,
                             .requests = 40,
                             .seed = 41}),
        generate_rpc_business({.groups = 2,
                               .clients_per_group = 2,
                               .servers_per_group = 2,
                               .calls = 30,
                               .seed = 42})}) {
    std::stringstream buffer;
    write_trace_binary(buffer, t);
    expect_traces_equal(t, read_trace_binary(buffer));
  }
}

TEST(BinaryTrace, SmallerThanText) {
  const Trace t = generate_locality_random(
      {.processes = 50, .group_size = 10, .messages = 2000, .seed = 43});
  std::ostringstream text, binary;
  write_trace(text, t);
  write_trace_binary(binary, t);
  EXPECT_LT(binary.str().size() * 2, text.str().size())
      << "binary " << binary.str().size() << " vs text "
      << text.str().size();
}

TEST(BinaryTrace, LoadAutoDetectsFormat) {
  const Trace t = generate_ring({.processes = 5, .iterations = 3, .seed = 44});
  const std::string dir = ::testing::TempDir();
  save_trace(dir + "/auto.trace", t);      // text
  save_trace(dir + "/auto.ctb", t);        // binary (by extension)
  expect_traces_equal(t, load_trace(dir + "/auto.trace"));
  expect_traces_equal(t, load_trace(dir + "/auto.ctb"));
}

TEST(BinaryTrace, RejectsCorruption) {
  const Trace t = generate_ring({.processes = 4, .iterations = 2, .seed = 45});
  std::ostringstream os;
  write_trace_binary(os, t);
  const std::string good = os.str();

  {  // bad magic
    std::string bad = good;
    bad[0] = 'X';
    std::istringstream in(bad);
    EXPECT_THROW((void)read_trace_binary(in), CheckFailure);
  }
  {  // truncations anywhere must throw, not crash
    Prng rng(9);
    for (int i = 0; i < 50; ++i) {
      std::string bad = good.substr(0, 5 + rng.index(good.size() - 5));
      std::istringstream in(bad);
      EXPECT_THROW((void)read_trace_binary(in), CheckFailure) << bad.size();
    }
  }
  {  // random byte flips: parse or throw, never crash
    Prng rng(10);
    for (int i = 0; i < 100; ++i) {
      std::string bad = good;
      bad[4 + rng.index(bad.size() - 4)] = static_cast<char>(rng());
      std::istringstream in(bad);
      try {
        (void)read_trace_binary(in);
      } catch (const CheckFailure&) {
      }
    }
  }
}

// ----------------------------------------------------------------- varint

TEST(Varint, RoundTripsBoundaryValues) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 0xffffffffull,
        ~0ull}) {
    std::string buffer;
    put_varint(buffer, v);
    std::size_t pos = 0;
    EXPECT_EQ(get_varint(buffer, pos), v);
    EXPECT_EQ(pos, buffer.size());
  }
}

TEST(Varint, SmallValuesAreOneByte) {
  std::string buffer;
  put_varint(buffer, 127);
  EXPECT_EQ(buffer.size(), 1u);
  put_varint(buffer, 128);
  EXPECT_EQ(buffer.size(), 3u);  // second value took two bytes
}

TEST(Varint, TruncationThrows) {
  std::string buffer;
  put_varint(buffer, 1u << 20);
  buffer.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW((void)get_varint(buffer, pos), CheckFailure);
}

TEST(Varint, RandomRoundTrip) {
  Prng rng(6);
  std::string buffer;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng() >> rng.index(64);
    values.push_back(v);
    put_varint(buffer, v);
  }
  std::size_t pos = 0;
  for (const std::uint64_t v : values) {
    ASSERT_EQ(get_varint(buffer, pos), v);
  }
  EXPECT_EQ(pos, buffer.size());
}

}  // namespace
}  // namespace ct

// Tests for ct_cluster: partition bookkeeping, communication counting, the
// paper's static greedy algorithm, baselines, and dynamic merge policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "cluster/cluster_set.hpp"
#include "cluster/comm_matrix.hpp"
#include "cluster/fixed_contiguous.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/kmedoid.hpp"
#include "cluster/merge_policy.hpp"
#include "cluster/static_greedy.hpp"
#include "core/engine.hpp"
#include "model/trace_builder.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

// ----------------------------------------------------------------- ClusterSet

TEST(ClusterSet, StartsAsSingletons) {
  ClusterSet cs(5);
  EXPECT_EQ(cs.cluster_count(), 5u);
  for (ProcessId p = 0; p < 5; ++p) {
    EXPECT_EQ(cs.cluster_of(p), p);
    EXPECT_EQ(cs.size(p), 1u);
  }
  EXPECT_EQ(cs.max_cluster_size(), 1u);
}

TEST(ClusterSet, MergeCombinesMembers) {
  ClusterSet cs(4);
  const ClusterId c = cs.merge(0, 2);
  EXPECT_EQ(cs.cluster_count(), 3u);
  EXPECT_EQ(cs.cluster_of(0), c);
  EXPECT_EQ(cs.cluster_of(2), c);
  EXPECT_EQ(cs.size(c), 2u);
  EXPECT_EQ(*cs.members(c), (std::vector<ProcessId>{0, 2}));
  // Members stay sorted across chained merges.
  const ClusterId c2 = cs.merge(c, cs.cluster_of(1));
  EXPECT_EQ(*cs.members(c2), (std::vector<ProcessId>{0, 1, 2}));
}

TEST(ClusterSet, StaleIdsRejected) {
  ClusterSet cs(3);
  const ClusterId c = cs.merge(0, 1);
  const ClusterId gone = c == 0 ? 1 : 0;
  EXPECT_THROW(cs.size(gone), CheckFailure);
  EXPECT_THROW(cs.merge(gone, 2), CheckFailure);
  EXPECT_THROW(cs.merge(c, c), CheckFailure);
}

TEST(ClusterSet, MemberSnapshotsAreShared) {
  ClusterSet cs(4);
  const ClusterId c = cs.merge(0, 1);
  const auto snapshot = cs.members(c);
  EXPECT_EQ(snapshot.get(), cs.members(c).get());  // same object until merge
  cs.merge(c, 2);
  EXPECT_NE(snapshot.get(), cs.members(cs.cluster_of(0)).get());
  EXPECT_EQ(*snapshot, (std::vector<ProcessId>{0, 1}));  // old one intact
}

TEST(ClusterSet, ExplicitPartition) {
  ClusterSet cs(5, {{0, 3}, {1}, {2, 4}});
  EXPECT_EQ(cs.cluster_count(), 3u);
  EXPECT_EQ(cs.cluster_of(0), cs.cluster_of(3));
  EXPECT_EQ(cs.cluster_of(2), cs.cluster_of(4));
  EXPECT_NE(cs.cluster_of(0), cs.cluster_of(1));
}

TEST(ClusterSet, PartitionMustCoverExactly) {
  EXPECT_THROW(ClusterSet(3, {{0, 1}}), CheckFailure);          // missing 2
  EXPECT_THROW(ClusterSet(3, {{0, 1}, {1, 2}}), CheckFailure);  // duplicate
  EXPECT_THROW(ClusterSet(3, {{0, 1, 2}, {}}), CheckFailure);   // empty part
  EXPECT_THROW(ClusterSet(3, {{0, 1, 5}}), CheckFailure);       // out of range
}

TEST(ClusterSet, ClustersListedAscending) {
  ClusterSet cs(6);
  cs.merge(4, 5);
  cs.merge(0, 2);
  const auto clusters = cs.clusters();
  EXPECT_TRUE(std::is_sorted(clusters.begin(), clusters.end()));
  EXPECT_EQ(clusters.size(), 4u);
}

// ----------------------------------------------------------------- CommMatrix

TEST(CommMatrix, CountsAsyncOnceAndSyncTwice) {
  TraceBuilder b;
  b.add_processes(3);
  b.message(0, 1);
  b.message(1, 0);
  b.sync(1, 2);
  const Trace t = b.build("counts", TraceFamily::kControl);
  const CommMatrix m(t);
  EXPECT_EQ(m.occurrences(0, 1), 2u);  // one each direction
  EXPECT_EQ(m.occurrences(1, 0), 2u);  // symmetric
  EXPECT_EQ(m.occurrences(1, 2), 2u);  // sync pair counts double (§3.1)
  EXPECT_EQ(m.occurrences(0, 2), 0u);
  EXPECT_EQ(m.total(1), 4u);
}

TEST(CommMatrix, UnreceivedSendsDoNotCount) {
  TraceBuilder b;
  b.add_processes(2);
  b.send(0);  // never received
  const Trace t = b.build("unreceived", TraceFamily::kControl);
  const CommMatrix m(t);
  EXPECT_EQ(m.occurrences(0, 1), 0u);
}

TEST(CommMatrix, BetweenSumsCrossPairs) {
  TraceBuilder b;
  b.add_processes(4);
  b.message(0, 2);
  b.message(1, 3);
  b.message(0, 1);  // intra-"a" — must not count in between({0,1},{2,3})
  const Trace t = b.build("between", TraceFamily::kControl);
  const CommMatrix m(t);
  EXPECT_EQ(m.between({0, 1}, {2, 3}), 2u);
}

// --------------------------------------------------------------- StaticGreedy

TEST(StaticGreedy, MergesCommunicatingPairs) {
  TraceBuilder b;
  b.add_processes(4);
  for (int i = 0; i < 5; ++i) b.message(0, 1);
  for (int i = 0; i < 5; ++i) b.message(2, 3);
  const Trace t = b.build("pairs", TraceFamily::kControl);
  const auto clusters =
      static_greedy_clusters(CommMatrix(t), {.max_cluster_size = 2});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<ProcessId>{0, 1}));
  EXPECT_EQ(clusters[1], (std::vector<ProcessId>{2, 3}));
}

TEST(StaticGreedy, RespectsMaxClusterSize) {
  const Trace t = generate_locality_random(
      {.processes = 40, .group_size = 8, .messages = 1200, .seed = 3});
  for (const std::size_t max_cs : {1u, 3u, 7u, 13u}) {
    const auto clusters = static_greedy_clusters(
        CommMatrix(t), {.max_cluster_size = max_cs});
    std::size_t covered = 0;
    for (const auto& c : clusters) {
      EXPECT_LE(c.size(), max_cs);
      covered += c.size();
    }
    EXPECT_EQ(covered, 40u);  // a partition
  }
}

TEST(StaticGreedy, RecoversPlantedGroups) {
  // Strong planted locality with group size 6: greedy clustering at
  // maxCS == 6 should recover the groups nearly exactly.
  const Trace t = generate_locality_random({.processes = 36,
                                            .group_size = 6,
                                            .intra_rate = 0.95,
                                            .messages = 3000,
                                            .seed = 7});
  const auto clusters =
      static_greedy_clusters(CommMatrix(t), {.max_cluster_size = 6});
  std::size_t exact = 0;
  for (const auto& c : clusters) {
    if (c.size() != 6) continue;
    const ProcessId base = c.front();
    if (base % 6 == 0 &&
        std::all_of(c.begin(), c.end(), [&](ProcessId p) {
          return p / 6 == base / 6;
        })) {
      ++exact;
    }
  }
  EXPECT_GE(exact, 4u) << "recovered only " << exact << " of 6 groups";
}

TEST(StaticGreedy, MaxCsOneKeepsSingletons) {
  const Trace t = generate_ring({.processes = 8, .iterations = 3, .seed = 1});
  const auto clusters =
      static_greedy_clusters(CommMatrix(t), {.max_cluster_size = 1});
  EXPECT_EQ(clusters.size(), 8u);
}

TEST(StaticGreedy, IgnoresNonCommunicatingPairs) {
  TraceBuilder b;
  b.add_processes(4);
  b.message(0, 1);
  // Processes 2 and 3 never communicate with anyone.
  b.unary(2);
  b.unary(3);
  const Trace t = b.build("isolated", TraceFamily::kControl);
  const auto clusters =
      static_greedy_clusters(CommMatrix(t), {.max_cluster_size = 4});
  // {0,1} merge; 2 and 3 stay singletons (no communication occurrence).
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(StaticGreedy, DeterministicAcrossRuns) {
  const Trace t = generate_web_server({.clients = 20,
                                       .servers = 4,
                                       .backends = 2,
                                       .requests = 200,
                                       .seed = 9});
  const CommMatrix m(t);
  const auto a = static_greedy_clusters(m, {.max_cluster_size = 8});
  const auto b = static_greedy_clusters(m, {.max_cluster_size = 8});
  EXPECT_EQ(a, b);
}

TEST(StaticGreedy, NormalizationChangesSelection) {
  // Hub topology: processes 1..3 talk to hub 0 heavily; 4 and 5 talk to
  // each other lightly. Raw-count greedy gobbles the hub cluster first;
  // normalized greedy still merges the light pair.
  TraceBuilder b;
  b.add_processes(6);
  for (int i = 0; i < 6; ++i) b.message(1, 0);
  for (int i = 0; i < 6; ++i) b.message(2, 0);
  for (int i = 0; i < 5; ++i) b.message(3, 0);
  for (int i = 0; i < 2; ++i) b.message(4, 5);
  const Trace t = b.build("hub", TraceFamily::kControl);
  const CommMatrix m(t);
  const auto normalized =
      static_greedy_clusters(m, {.max_cluster_size = 3, .normalize = true});
  const auto raw =
      static_greedy_clusters(m, {.max_cluster_size = 3, .normalize = false});
  // Both must keep {4,5} together.
  const auto has_pair = [](const auto& clusters) {
    return std::any_of(clusters.begin(), clusters.end(), [](const auto& c) {
      return c == std::vector<ProcessId>{4, 5};
    });
  };
  EXPECT_TRUE(has_pair(normalized));
  EXPECT_TRUE(has_pair(raw));
  // And the two orderings produce valid partitions of all six processes.
  for (const auto& clusters : {normalized, raw}) {
    std::size_t n = 0;
    for (const auto& c : clusters) n += c.size();
    EXPECT_EQ(n, 6u);
  }
}

// ------------------------------------------------------------------ baselines

TEST(FixedContiguous, ChunksById) {
  const auto clusters = fixed_contiguous_clusters(10, 4);
  ASSERT_EQ(clusters.size(), 3u);
  EXPECT_EQ(clusters[0], (std::vector<ProcessId>{0, 1, 2, 3}));
  EXPECT_EQ(clusters[1], (std::vector<ProcessId>{4, 5, 6, 7}));
  EXPECT_EQ(clusters[2], (std::vector<ProcessId>{8, 9}));
}

TEST(FixedContiguous, SizeOne) {
  EXPECT_EQ(fixed_contiguous_clusters(3, 1).size(), 3u);
}

TEST(KMedoid, ProducesAtMostKNonEmptyClusters) {
  const Trace t = generate_web_server({.clients = 30,
                                       .servers = 4,
                                       .backends = 2,
                                       .requests = 300,
                                       .seed = 11});
  const auto clusters = kmedoid_clusters(CommMatrix(t), {.k = 5});
  EXPECT_LE(clusters.size(), 5u);
  std::size_t covered = 0;
  for (const auto& c : clusters) {
    EXPECT_FALSE(c.empty());
    covered += c.size();
  }
  EXPECT_EQ(covered, 36u);
}

TEST(KMedoid, UnboundedSizesAreSkewed) {
  // The paper's observation (§3.1): fixing the cluster *count* on a
  // hub-and-spoke communication graph produces one crowded cluster.
  const Trace t = generate_pubsub({.publishers = 10,
                                   .brokers = 2,
                                   .subscribers = 30,
                                   .topics = 6,
                                   .subscribers_per_topic = 8,
                                   .messages = 300,
                                   .seed = 13});
  const auto clusters = kmedoid_clusters(CommMatrix(t), {.k = 6});
  std::size_t largest = 0;
  for (const auto& c : clusters) largest = std::max(largest, c.size());
  const std::size_t n = t.process_count();
  EXPECT_GT(largest, n / 3) << "expected a dominant cluster";
}

TEST(KMeans, PartitionsAllProcesses) {
  const Trace t = generate_locality_random(
      {.processes = 30, .group_size = 6, .messages = 600, .seed = 17});
  const auto clusters = kmeans_clusters(CommMatrix(t), {.k = 5});
  EXPECT_LE(clusters.size(), 5u);
  std::vector<bool> seen(30, false);
  for (const auto& c : clusters) {
    for (const ProcessId p : c) {
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool x) { return x; }));
}

TEST(KMeans, KOneIsEverything) {
  const Trace t = generate_ring({.processes = 6, .iterations = 2, .seed = 1});
  const auto clusters = kmeans_clusters(CommMatrix(t), {.k = 1});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 6u);
}

// -------------------------------------------------------------- MergePolicies

TEST(MergeOnFirst, AlwaysMerges) {
  MergeOnFirst policy;
  EXPECT_TRUE(policy.should_merge(0, 1, 1, 1, 1));
  EXPECT_TRUE(policy.should_merge(2, 10, 3, 5, 2));
}

TEST(MergeOnNth, ThresholdZeroDegeneratesToFirst) {
  MergeOnNth policy(0.0);
  // First occurrence: count 1, normalized 1/(1+1) = 0.5 > 0.
  EXPECT_TRUE(policy.should_merge(0, 1, 1, 1, 1));
}

TEST(MergeOnNth, AccumulatesUntilThreshold) {
  MergeOnNth policy(2.0);
  // Sizes 1+1: need count > 4.
  EXPECT_FALSE(policy.should_merge(0, 1, 1, 1, 1));  // 1/2
  EXPECT_FALSE(policy.should_merge(0, 1, 1, 1, 1));  // 2/2
  EXPECT_FALSE(policy.should_merge(0, 1, 1, 1, 1));  // 3/2 = 1.5
  EXPECT_FALSE(policy.should_merge(0, 1, 1, 1, 1));  // 4/2 = 2.0 (not >)
  EXPECT_TRUE(policy.should_merge(0, 1, 1, 1, 1));   // 5/2 = 2.5
}

TEST(MergeOnNth, SyncCountsDouble) {
  MergeOnNth policy(1.0);
  // One sync pair = 2 occurrences: 2/2 = 1.0, not > 1.
  EXPECT_FALSE(policy.should_merge(0, 1, 1, 1, 2));
  // Second sync pair: 4/2 = 2 > 1.
  EXPECT_TRUE(policy.should_merge(0, 1, 1, 1, 2));
}

TEST(MergeOnNth, FoldsCountsOnMerge) {
  MergeOnNth policy(10.0);
  // Build counts (0,2)=3 and (1,2)=2, then merge 1 into 0.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(policy.should_merge(0, 1, 2, 1, 1));
  for (int i = 0; i < 2; ++i) EXPECT_FALSE(policy.should_merge(1, 1, 2, 1, 1));
  policy.on_merge(0, 1);
  // Pair (0,2) now carries 5; sizes 2+1: need > 30 → next call count 6.
  EXPECT_FALSE(policy.should_merge(0, 2, 2, 1, 1));
  // Drive it over the threshold: need count/3 > 10, i.e. count 31.
  for (int count = 7; count <= 30; ++count) {
    EXPECT_FALSE(policy.should_merge(0, 2, 2, 1, 1)) << "count " << count;
  }
  EXPECT_TRUE(policy.should_merge(0, 2, 2, 1, 1));
}

TEST(MergeOnNth, RejectsNegativeThreshold) {
  EXPECT_THROW(MergeOnNth(-1.0), CheckFailure);
}

TEST(NeverMerge, NeverMerges) {
  NeverMerge policy;
  EXPECT_FALSE(policy.should_merge(0, 1, 1, 1, 100));
}

// ------------------------------------------------- partition property tests

/// Asserts the full partition invariant: clusters() is an ascending list of
/// live roots whose member lists are sorted, pairwise disjoint, total over
/// the process set, and consistent with cluster_of / size / cluster_count /
/// max_cluster_size.
void expect_valid_partition(const ClusterSet& cs) {
  const std::vector<ClusterId> ids = cs.clusters();
  ASSERT_EQ(ids.size(), cs.cluster_count());
  ASSERT_TRUE(std::is_sorted(ids.begin(), ids.end()));

  std::set<ProcessId> covered;
  std::size_t total = 0;
  std::size_t largest = 0;
  for (const ClusterId c : ids) {
    const auto members = cs.members(c);
    ASSERT_FALSE(members->empty());
    ASSERT_TRUE(std::is_sorted(members->begin(), members->end()));
    ASSERT_EQ(members->size(), cs.size(c));
    total += members->size();
    largest = std::max(largest, members->size());
    for (const ProcessId p : *members) {
      ASSERT_TRUE(covered.insert(p).second)
          << "process " << p << " appears in two clusters";
      ASSERT_EQ(cs.cluster_of(p), c);
    }
  }
  ASSERT_EQ(total, cs.process_count());  // disjoint + total = partition
  ASSERT_EQ(largest, cs.max_cluster_size());
}

TEST(ClusterSetProperty, RandomMergeSequencesPreserveThePartition) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    Prng rng(seed);
    const std::size_t processes = 2 + rng.index(32);
    ClusterSet cs(processes);
    expect_valid_partition(cs);
    // Merge random live pairs down to a random stopping point; the partition
    // invariant must hold after every single merge.
    const std::size_t stop = 1 + rng.index(processes);
    while (cs.cluster_count() > stop) {
      const std::vector<ClusterId> ids = cs.clusters();
      const std::size_t a = rng.index(ids.size());
      std::size_t b = rng.index(ids.size() - 1);
      if (b >= a) ++b;
      const ClusterId survivor = cs.merge(ids[a], ids[b]);
      // The survivor is one of the two inputs, never a third id.
      ASSERT_TRUE(survivor == ids[a] || survivor == ids[b]);
      expect_valid_partition(cs);
    }
  }
}

TEST(ClusterSetProperty, AllFourStrategiesYieldValidPartitions) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trace t = generate_uniform_random(
        {.processes = 6 + static_cast<std::size_t>(seed), .messages = 120,
         .seed = seed});
    const std::size_t processes = t.process_count();
    const CommMatrix comm(t);
    for (const std::size_t max_cs : {1ul, 4ul, 7ul}) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " maxCS " +
                   std::to_string(max_cs));
      // Static strategies produce explicit partitions.
      StaticGreedyOptions opts;
      opts.max_cluster_size = max_cs;
      const ClusterSet greedy(processes, static_greedy_clusters(comm, opts));
      expect_valid_partition(greedy);
      EXPECT_LE(greedy.max_cluster_size(), max_cs);
      const ClusterSet fixed(processes,
                             fixed_contiguous_clusters(processes, max_cs));
      expect_valid_partition(fixed);
      EXPECT_LE(fixed.max_cluster_size(), max_cs);
      // Dynamic strategies coarsen the engine's cluster set in place.
      for (const bool nth : {false, true}) {
        ClusterEngineConfig ec;
        ec.max_cluster_size = max_cs;
        ec.fm_vector_width = processes;
        ClusterTimestampEngine engine(
            processes, ec, nth ? make_merge_on_nth(2.0)
                               : make_merge_on_first());
        engine.observe_trace(t);
        expect_valid_partition(engine.clusters());
        EXPECT_LE(engine.clusters().max_cluster_size(), max_cs);
      }
    }
  }
}

}  // namespace
}  // namespace ct

// Tests for the performance layer (docs/PERF.md).
//
// The layer's contract is "faster, never different": every acceleration —
// the arena fast path, store-time probe resolution, the precedence cursor,
// the heap-accelerated greedy clustering, the word-parallel kernels, the
// delta codecs — must be observationally identical to the code it replaces.
// These tests pin that down: fast vs slow implementations are run side by
// side on the same inputs and compared answer-for-answer (and, where cost
// metering is part of the observable surface, tick-for-tick).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "cluster/comm_matrix.hpp"
#include "cluster/static_greedy.hpp"
#include "core/compact_store.hpp"
#include "core/engine.hpp"
#include "core/precedence_kernels.hpp"
#include "model/trace_builder.hpp"
#include "timestamp/query_cost.hpp"
#include "timestamp/ts_arena.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/varint.hpp"

namespace ct {
namespace {

// Same family spread as core_test's oracle property: ring, scatter-gather,
// web server, RPC business, uniform random, locality random, pub/sub, RPC
// chain — every structural shape the generators produce.
Trace family_trace(int which) {
  switch (which) {
    case 0:
      return generate_ring({.processes = 10, .iterations = 9, .seed = 742});
    case 1:
      return generate_scatter_gather(
          {.processes = 9, .rounds = 7, .seed = 743});
    case 2:
      return generate_web_server({.clients = 12,
                                  .servers = 3,
                                  .backends = 2,
                                  .requests = 55,
                                  .seed = 744});
    case 3:
      return generate_rpc_business({.groups = 3,
                                    .clients_per_group = 3,
                                    .servers_per_group = 2,
                                    .calls = 60,
                                    .seed = 745});
    case 4:
      return generate_uniform_random(
          {.processes = 12, .messages = 110, .seed = 746});
    case 5:
      return generate_locality_random({.processes = 18,
                                       .group_size = 6,
                                       .messages = 130,
                                       .seed = 747});
    case 6:
      return generate_pubsub({.publishers = 4,
                              .brokers = 2,
                              .subscribers = 8,
                              .topics = 4,
                              .subscribers_per_topic = 3,
                              .messages = 35,
                              .seed = 748});
    case 7:
      return generate_rpc_chain(
          {.services = 9, .chain_length = 4, .requests = 22, .seed = 749});
    default:
      CT_CHECK(false);
      return {};
  }
}

ClusterEngineConfig engine_config(std::size_t max_cs, bool use_arena) {
  ClusterEngineConfig config;
  config.max_cluster_size = max_cs;
  config.fm_vector_width = 300;
  config.use_arena = use_arena;
  return config;
}

/// All-pairs: plain answers equal, metered answers equal, metered TICKS
/// equal. The tick identity is the strongest form of "same algorithm": the
/// arena path must charge exactly what the legacy path would have.
void expect_engines_identical(const Trace& trace,
                              const ClusterTimestampEngine& arena,
                              const ClusterTimestampEngine& legacy,
                              const std::string& label) {
  for (const EventId e : trace.delivery_order()) {
    for (const EventId f : trace.delivery_order()) {
      const Event& ev_e = trace.event(e);
      const Event& ev_f = trace.event(f);
      const bool got = arena.precedes(ev_e, ev_f);
      const bool want = legacy.precedes(ev_e, ev_f);
      ASSERT_EQ(got, want)
          << label << ": precedes mismatch e=" << e << " f=" << f;

      QueryCost ca, cl;
      const auto ma = arena.precedes_metered(ev_e, ev_f, ca);
      const auto ml = legacy.precedes_metered(ev_e, ev_f, cl);
      ASSERT_EQ(ma.has_value(), ml.has_value()) << label << " e=" << e;
      ASSERT_EQ(*ma, *ml) << label << ": metered mismatch e=" << e
                          << " f=" << f;
      ASSERT_EQ(ca.ticks, cl.ticks)
          << label << ": tick mismatch e=" << e << " f=" << f;
    }
  }
}

class ArenaEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ArenaEquivalence, AnswersAndTicksMatchLegacyAllPairs) {
  const Trace trace = family_trace(GetParam());
  const std::size_t n = trace.process_count();

  for (const std::size_t max_cs :
       {std::size_t{2}, std::size_t{5}, std::size_t{13}}) {
    ClusterTimestampEngine arena(n, engine_config(max_cs, true),
                                 make_merge_on_nth(2.0));
    ClusterTimestampEngine legacy(n, engine_config(max_cs, false),
                                  make_merge_on_nth(2.0));
    arena.observe_trace(trace);
    legacy.observe_trace(trace);
    ASSERT_EQ(arena.state_digest(), legacy.state_digest());
    EXPECT_GT(arena.arena_words(), 0u);
    EXPECT_EQ(legacy.arena_words(), 0u);
    expect_engines_identical(trace, arena, legacy,
                             trace.name() + " maxCS=" +
                                 std::to_string(max_cs));
  }
}

TEST_P(ArenaEquivalence, CursorMatchesLegacyBothDirections) {
  const Trace trace = family_trace(GetParam());
  const std::size_t n = trace.process_count();

  ClusterTimestampEngine arena(n, engine_config(5, true),
                               make_merge_on_nth(2.0));
  ClusterTimestampEngine legacy(n, engine_config(5, false),
                                make_merge_on_nth(2.0));
  arena.observe_trace(trace);
  legacy.observe_trace(trace);

  // Every event as anchor would be quadratic twice over; a stride keeps it
  // fast while still hitting full rows, projections, and sync halves.
  const auto& order = trace.delivery_order();
  for (std::size_t i = 0; i < order.size(); i += 7) {
    const Event& anchor = trace.event(order[i]);
    const auto cur = arena.cursor(anchor);
    for (const EventId x : order) {
      const Event& ev_x = trace.event(x);
      ASSERT_EQ(cur.anchor_precedes(ev_x), legacy.precedes(anchor, ev_x))
          << trace.name() << ": anchor=" << order[i] << " x=" << x;
      ASSERT_EQ(cur.precedes_anchor(ev_x), legacy.precedes(ev_x, anchor))
          << trace.name() << ": x=" << x << " anchor=" << order[i];
    }
  }
}

// The batch-transpose fast path (unlimited budget) must match sequential
// precedes_metered calls answer-for-answer AND tick-for-tick; a budgeted
// batch must take the sequential oracle path and stop at exactly the pair
// where a running sequential meter would.
TEST_P(ArenaEquivalence, BatchedPrecedenceMatchesSequentialAnswersAndTicks) {
  const Trace trace = family_trace(GetParam());
  ClusterTimestampEngine arena(trace.process_count(), engine_config(5, true),
                               make_merge_on_nth(2.0));
  arena.observe_trace(trace);

  const auto& order = trace.delivery_order();
  std::vector<std::pair<const Event*, const Event*>> pairs;
  for (std::size_t i = 0; i < order.size(); i += 3) {
    for (std::size_t j = 0; j < order.size(); j += 5) {
      pairs.emplace_back(&trace.event(order[i]), &trace.event(order[j]));
    }
  }

  QueryCost batch_cost;
  std::vector<std::optional<bool>> got(pairs.size());
  ASSERT_EQ(arena.precedes_batch_metered(pairs, batch_cost, got.data()),
            pairs.size());

  QueryCost seq_cost;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto want =
        arena.precedes_metered(*pairs[i].first, *pairs[i].second, seq_cost);
    ASSERT_TRUE(want.has_value());
    ASSERT_EQ(got[i], want) << trace.name() << " pair " << i;
  }
  EXPECT_EQ(batch_cost.ticks, seq_cost.ticks) << trace.name();

  // Budget-limited run: same prefix of answers, short count at the same
  // pair, untouched slots beyond it.
  QueryCost limited{.ticks = 0, .budget = seq_cost.ticks / 2 + 1};
  std::vector<std::optional<bool>> partial(pairs.size());
  const std::size_t answered =
      arena.precedes_batch_metered(pairs, limited, partial.data());
  ASSERT_LE(answered, pairs.size());

  QueryCost replay{.ticks = 0, .budget = limited.budget};
  for (std::size_t i = 0; i < answered; ++i) {
    const auto want =
        arena.precedes_metered(*pairs[i].first, *pairs[i].second, replay);
    ASSERT_TRUE(want.has_value()) << trace.name() << " pair " << i;
    ASSERT_EQ(partial[i], want) << trace.name() << " pair " << i;
  }
  if (answered < pairs.size()) {
    EXPECT_FALSE(arena
                     .precedes_metered(*pairs[answered].first,
                                       *pairs[answered].second, replay)
                     .has_value())
        << trace.name() << ": batch stopped early at pair " << answered;
    for (std::size_t i = answered; i < pairs.size(); ++i) {
      ASSERT_FALSE(partial[i].has_value())
          << trace.name() << ": slot " << i << " past the expiry was written";
    }
  }
  EXPECT_EQ(limited.ticks, replay.ticks) << trace.name();
}

// The cursor's batched one-sided entry points must agree with its scalar
// calls for every event, both directions, across full rows, projections,
// and sync halves.
TEST_P(ArenaEquivalence, CursorBatchMatchesScalarCursorCalls) {
  const Trace trace = family_trace(GetParam());
  ClusterTimestampEngine arena(trace.process_count(), engine_config(5, true),
                               make_merge_on_nth(2.0));
  arena.observe_trace(trace);

  const auto& order = trace.delivery_order();
  std::vector<const Event*> xs;
  xs.reserve(order.size());
  for (const EventId x : order) xs.push_back(&trace.event(x));

  for (std::size_t i = 0; i < order.size(); i += 9) {
    const auto cur = arena.cursor(trace.event(order[i]));
    std::vector<std::uint8_t> fwd(xs.size(), 0xcc), bwd(xs.size(), 0xcc);
    cur.anchor_precedes_batch(xs, fwd.data());
    cur.precedes_anchor_batch(xs, bwd.data());
    for (std::size_t k = 0; k < xs.size(); ++k) {
      ASSERT_EQ(fwd[k] != 0, cur.anchor_precedes(*xs[k]))
          << trace.name() << " anchor=" << order[i] << " k=" << k;
      ASSERT_EQ(bwd[k] != 0, cur.precedes_anchor(*xs[k]))
          << trace.name() << " anchor=" << order[i] << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ArenaEquivalence, ::testing::Range(0, 8));

// The precomputed probes must track in-place mutations: corruption changes
// the projection bounds the legacy path re-searches per query, and a rebuild
// restores them. After each hook the two engines must still agree on every
// pair — this is the refresh_probes() contract.
TEST(ArenaEquivalence, CorruptionAndRebuildKeepEnginesIdentical) {
  const Trace trace = generate_locality_random(
      {.processes = 12, .group_size = 4, .messages = 150, .seed = 750});
  const std::size_t n = trace.process_count();

  ClusterTimestampEngine arena(n, engine_config(4, true),
                               make_merge_on_nth(1.0));
  ClusterTimestampEngine legacy(n, engine_config(4, false),
                                make_merge_on_nth(1.0));
  arena.observe_trace(trace);
  legacy.observe_trace(trace);

  // Corrupt a spread of stored rows in BOTH engines (the corruption model:
  // both stores took the same bit flips; queries must read them the same).
  const auto& order = trace.delivery_order();
  std::mt19937 rng(751);
  for (std::size_t i = 0; i < order.size(); i += 11) {
    const std::size_t slot = rng() % 8;
    const EventIndex value = rng() % 64;
    arena.inject_corruption(order[i], slot, value);
    legacy.inject_corruption(order[i], slot, value);
  }
  expect_engines_identical(trace, arena, legacy, "post-corruption");

  // Repair every cluster in both engines; they must converge back together
  // (and to the digest of an untouched replay).
  const auto event_of = [&trace](EventId id) -> const Event& {
    return trace.event(id);
  };
  for (const ClusterId c : arena.clusters().clusters()) {
    arena.rebuild_cluster(c, order, event_of);
    legacy.rebuild_cluster(c, order, event_of);
  }
  expect_engines_identical(trace, arena, legacy, "post-rebuild");
}

// ---------------------------------------------------------- greedy clustering

class GreedyHeapEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GreedyHeapEquivalence, PartitionByteIdenticalToReference) {
  const Trace trace = family_trace(GetParam());
  const CommMatrix comm(trace);

  for (const std::size_t max_cs :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{5},
        std::size_t{13}, std::size_t{64}}) {
    for (const bool normalize : {true, false}) {
      const StaticGreedyOptions options{.max_cluster_size = max_cs,
                                        .normalize = normalize};
      const auto heap = static_greedy_clusters(comm, options);
      const auto ref = static_greedy_clusters_reference(comm, options);
      // operator== on nested vectors is the byte-identical check: same
      // clusters, same member order, same tie-break choices.
      ASSERT_EQ(heap, ref) << trace.name() << " maxCS=" << max_cs
                           << " normalize=" << normalize;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, GreedyHeapEquivalence,
                         ::testing::Range(0, 8));

// ------------------------------------------------------------------- kernels

constexpr EventIndex kEdgeValues[] = {
    0u, 1u, 0x7fff'ffffu, 0x8000'0000u, 0xffff'fffeu,
    std::numeric_limits<EventIndex>::max()};

TEST(Kernels, AllLeqMatchesReferenceOnEdgeValues) {
  // Exhaustive over edge-value pairs at length 1 and 2 (both lanes of one
  // word) — the SWAR lane comparison must be exact over the FULL unsigned
  // range, including the sign-bit boundary 2^31.
  for (const EventIndex a0 : kEdgeValues) {
    for (const EventIndex b0 : kEdgeValues) {
      const bool want1 = a0 <= b0;
      EXPECT_EQ(kernels::all_leq(&a0, &b0, 1), want1) << a0 << " " << b0;
      for (const EventIndex a1 : kEdgeValues) {
        for (const EventIndex b1 : kEdgeValues) {
          const EventIndex a[2] = {a0, a1};
          const EventIndex b[2] = {b0, b1};
          const bool want = kernels::reference::all_leq(a, b, 2);
          EXPECT_EQ(kernels::all_leq(a, b, 2), want)
              << a0 << "," << a1 << " vs " << b0 << "," << b1;
          EXPECT_EQ(kernels::any_gt(a, b, 2), !want);
        }
      }
    }
  }
}

TEST(Kernels, AllLeqAndMaxIntoMatchReferenceAtWordBoundaries) {
  std::mt19937 rng(752);
  // Mix small values (the common case) with edge values at random slots.
  const auto fill = [&rng](std::vector<EventIndex>& v) {
    for (auto& x : v) {
      x = (rng() % 4 == 0) ? kEdgeValues[rng() % std::size(kEdgeValues)]
                           : static_cast<EventIndex>(rng() % 1000);
    }
  };
  // Lengths around every word boundary: 0, 1 (tail only), 2 (one word),
  // 3 (word + tail), ... up to several words.
  for (std::size_t n = 0; n <= 17; ++n) {
    for (int rep = 0; rep < 200; ++rep) {
      std::vector<EventIndex> a(n), b(n);
      fill(a);
      fill(b);
      // Bias towards near-equal vectors so all_leq exercises both outcomes.
      if (rep % 2 == 0) b = a;
      if (rep % 4 == 0 && n > 0) {
        b[rng() % n] += static_cast<EventIndex>(rng() % 3);
      }

      ASSERT_EQ(kernels::all_leq(a.data(), b.data(), n),
                kernels::reference::all_leq(a.data(), b.data(), n))
          << "n=" << n << " rep=" << rep;

      std::vector<EventIndex> got = a, want = a;
      kernels::max_into(got.data(), b.data(), n);
      kernels::reference::max_into(want.data(), b.data(), n);
      ASSERT_EQ(got, want) << "n=" << n << " rep=" << rep;
    }
  }
}

TEST(Kernels, CountLeqMatchesUpperBound) {
  std::mt19937 rng(753);
  for (std::size_t n = 0; n <= 33; ++n) {
    for (int rep = 0; rep < 50; ++rep) {
      std::vector<EventIndex> v(n);
      for (auto& x : v) x = static_cast<EventIndex>(rng() % 40);
      std::sort(v.begin(), v.end());
      for (const EventIndex bound :
           {EventIndex{0}, EventIndex{1}, EventIndex{20}, EventIndex{39},
            EventIndex{40}, std::numeric_limits<EventIndex>::max()}) {
        const auto want = static_cast<std::size_t>(
            std::upper_bound(v.begin(), v.end(), bound) - v.begin());
        ASSERT_EQ(kernels::count_leq(v.data(), n, bound), want)
            << "n=" << n << " bound=" << bound;
      }
    }
  }
}

TEST(Kernels, ComponentLeqBoundsChecks) {
  const EventIndex row[3] = {5, 0, std::numeric_limits<EventIndex>::max()};
  EXPECT_TRUE(kernels::component_leq(5, row, 3, 0));
  EXPECT_FALSE(kernels::component_leq(6, row, 3, 0));
  EXPECT_TRUE(kernels::component_leq(0, row, 3, 1));
  EXPECT_FALSE(kernels::component_leq(1, row, 3, 1));
  EXPECT_TRUE(kernels::component_leq(std::numeric_limits<EventIndex>::max(),
                                     row, 3, 2));
  // Out-of-range slot is "not covered", never a read.
  EXPECT_FALSE(kernels::component_leq(0, row, 3, 3));
  EXPECT_FALSE(kernels::component_leq(0, row, 0, 0));
}

TEST(Kernels, BatchedVariantsMatchScalarLoops) {
  std::mt19937 rng(754);
  const std::size_t width = 11;
  std::vector<std::vector<EventIndex>> storage;
  for (int i = 0; i < 37; ++i) {
    std::vector<EventIndex> row(width);
    for (auto& x : row) {
      x = (rng() % 5 == 0) ? kEdgeValues[rng() % std::size(kEdgeValues)]
                           : static_cast<EventIndex>(rng() % 100);
    }
    storage.push_back(std::move(row));
  }
  std::vector<const EventIndex*> rows;
  for (const auto& r : storage) rows.push_back(r.data());

  std::vector<EventIndex> query(width);
  for (auto& x : query) x = static_cast<EventIndex>(rng() % 100);

  for (const EventIndex bound :
       {EventIndex{0}, EventIndex{50}, EventIndex{0x8000'0000u},
        std::numeric_limits<EventIndex>::max()}) {
    for (const std::size_t slot : {std::size_t{0}, std::size_t{7}}) {
      std::vector<std::uint8_t> got(rows.size(), 0xcc);
      kernels::batch_component_leq(bound, slot, rows.data(), rows.size(),
                                   got.data());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const std::uint8_t want =
            kernels::component_leq(bound, rows[i], width, slot) ? 1 : 0;
        ASSERT_EQ(got[i], want) << "bound=" << bound << " i=" << i;
      }
    }
  }

  std::vector<std::uint8_t> got(rows.size(), 0xcc);
  kernels::batch_all_leq(query.data(), width, rows.data(), rows.size(),
                         got.data());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::uint8_t want =
        kernels::reference::all_leq(query.data(), rows[i], width) ? 1 : 0;
    ASSERT_EQ(got[i], want) << i;
  }
}

// ---------------------------------------------------------- dispatch tiers

constexpr kernels::KernelTier kAllTiers[] = {
    kernels::KernelTier::kScalar, kernels::KernelTier::kSwar,
    kernels::KernelTier::kAvx2, kernels::KernelTier::kAvx512};

// Every tier this CPU can run must be byte-identical to the scalar reference
// on the edge corpus, at every length straddling the 2-/8-/16-lane
// boundaries (0..40 covers tails, exact multiples, and a full unrolled
// vector of each tier), and from unaligned bases (+1-element offsets break
// the 32-/64-byte alignment the wide loads must not assume).
TEST(Kernels, EveryAvailableTierMatchesScalarReference) {
  std::mt19937 rng(755);
  const auto fill = [&rng](EventIndex* p, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = (rng() % 3 == 0) ? kEdgeValues[rng() % std::size(kEdgeValues)]
                              : static_cast<EventIndex>(rng() % 1000);
    }
  };

  for (const kernels::KernelTier tier : kAllTiers) {
    if (!kernels::tier_supported(tier)) continue;
    const kernels::KernelOps& ops = kernels::ops_for_tier(tier);
    const char* name = kernels::to_string(tier);

    for (std::size_t n = 0; n <= 40; ++n) {
      for (const std::size_t offset : {std::size_t{0}, std::size_t{1}}) {
        for (int rep = 0; rep < 8; ++rep) {
          std::vector<EventIndex> abuf(n + 1, 0), bbuf(n + 1, 0);
          EventIndex* a = abuf.data() + offset;
          EventIndex* b = bbuf.data() + offset;
          fill(a, n);
          fill(b, n);
          // Bias towards near-dominance so both all_leq outcomes and every
          // batch_leq flag pattern appear.
          if (rep % 2 == 0) std::copy(a, a + n, b);
          if (rep % 4 == 0 && n > 0) {
            b[rng() % n] += static_cast<EventIndex>(rng() % 3);
          }

          ASSERT_EQ(ops.all_leq(a, b, n),
                    kernels::reference::all_leq(a, b, n))
              << name << " n=" << n << " off=" << offset << " rep=" << rep;

          std::vector<EventIndex> got_max(a, a + n), want_max(a, a + n);
          ops.max_into(got_max.data(), b, n);
          kernels::reference::max_into(want_max.data(), b, n);
          ASSERT_EQ(got_max, want_max)
              << name << " n=" << n << " off=" << offset << " rep=" << rep;

          std::vector<std::uint8_t> got_flags(n + 1, 0xcc);
          std::vector<std::uint8_t> want_flags(n + 1, 0xcc);
          ops.batch_leq(a, b, n, got_flags.data());
          kernels::reference::batch_leq(a, b, n, want_flags.data());
          ASSERT_EQ(got_flags, want_flags)
              << name << " n=" << n << " off=" << offset << " rep=" << rep;
        }
      }
    }

    // Row-batch entry points: unaligned row bases, counts straddling every
    // chunk/lane boundary of the gather loops (kChunk = 64 in the wide
    // tiers).
    const std::size_t width = 13;
    std::vector<std::vector<EventIndex>> storage;
    for (int i = 0; i < 70; ++i) {
      std::vector<EventIndex> buf(width + 1, 0);
      fill(buf.data() + 1, width);
      storage.push_back(std::move(buf));
    }
    std::vector<const EventIndex*> rows;
    for (const auto& r : storage) rows.push_back(r.data() + 1);
    std::vector<EventIndex> qbuf(width + 1, 0);
    fill(qbuf.data() + 1, width);
    const EventIndex* query = qbuf.data() + 1;

    for (const std::size_t count :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
          std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{17},
          std::size_t{63}, std::size_t{64}, std::size_t{65},
          std::size_t{70}}) {
      ASSERT_LE(count, rows.size());
      for (const EventIndex bound :
           {EventIndex{0}, EventIndex{500}, EventIndex{0x8000'0000u},
            std::numeric_limits<EventIndex>::max()}) {
        std::vector<std::uint8_t> got(count + 1, 0xcc);
        ops.batch_component_leq(bound, 7, rows.data(), count, got.data());
        for (std::size_t i = 0; i < count; ++i) {
          const std::uint8_t want = bound <= rows[i][7] ? 1 : 0;
          ASSERT_EQ(got[i], want)
              << name << " count=" << count << " bound=" << bound
              << " i=" << i;
        }
        ASSERT_EQ(got[count], 0xcc) << name << " overwrote past count";
      }

      std::vector<std::uint8_t> got(count + 1, 0xcc);
      ops.batch_all_leq(query, width, rows.data(), count, got.data());
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint8_t want =
            kernels::reference::all_leq(query, rows[i], width) ? 1 : 0;
        ASSERT_EQ(got[i], want) << name << " count=" << count << " i=" << i;
      }
      ASSERT_EQ(got[count], 0xcc) << name << " overwrote past count";
    }
  }
}

TEST(Kernels, TierNamesParseAndRoundTrip) {
  for (const kernels::KernelTier tier : kAllTiers) {
    kernels::KernelTier parsed;
    ASSERT_TRUE(kernels::parse_kernel_tier(kernels::to_string(tier), &parsed))
        << kernels::to_string(tier);
    EXPECT_EQ(parsed, tier);
  }
  kernels::KernelTier parsed;
  EXPECT_FALSE(kernels::parse_kernel_tier("", &parsed));
  EXPECT_FALSE(kernels::parse_kernel_tier("sse2", &parsed));
  EXPECT_FALSE(kernels::parse_kernel_tier("AVX2", &parsed));
}

// set_kernel_tier (the programmatic face of CT_KERNEL_TIER) must clamp to
// the widest supported tier, report the tier actually activated, and route
// the PUBLIC dispatch wrappers through that tier's table.
TEST(Kernels, TierSelectionClampsAndRedispatches) {
  const kernels::KernelTier prev = kernels::active_tier();
  const kernels::KernelTier widest = kernels::widest_supported_tier();
  EXPECT_GE(widest, kernels::KernelTier::kSwar);

  for (const kernels::KernelTier tier : kAllTiers) {
    const kernels::KernelTier got = kernels::set_kernel_tier(tier);
    EXPECT_EQ(got, std::min(tier, widest)) << kernels::to_string(tier);
    EXPECT_EQ(kernels::active_tier(), got);

    // The wrappers must now serve answers through the selected table.
    const EventIndex a[17] = {1, 2, 3, 4, 5, 6, 7, 8, 9,
                              10, 11, 12, 13, 14, 15, 16, 17};
    EventIndex b[17];
    std::copy(std::begin(a), std::end(a), std::begin(b));
    EXPECT_TRUE(kernels::all_leq(a, b, 17));
    b[13] = 0;
    EXPECT_FALSE(kernels::all_leq(a, b, 17));
    kernels::max_into(b, a, 17);
    EXPECT_TRUE(std::equal(std::begin(a), std::end(a), std::begin(b)));
  }
  EXPECT_EQ(kernels::set_kernel_tier(prev), prev);
}

// The n == 0 contract of count_leq is explicit (the descent arithmetic
// happening to yield 0 is not a contract): no reads, result 0.
TEST(Kernels, CountLeqEmptyRowIsZero) {
  EXPECT_EQ(kernels::count_leq(nullptr, 0, 0), 0u);
  EXPECT_EQ(kernels::count_leq(nullptr, 0,
                               std::numeric_limits<EventIndex>::max()),
            0u);
}

// -------------------------------------------------------------------- codecs

TEST(Varint, RoundTripsEdgeValues) {
  const std::uint64_t values[] = {
      0u,
      1u,
      0x7fu,           // 1-byte max
      0x80u,           // first 2-byte value
      0x3fffu,         // 2-byte max
      0x4000u,
      0x7fff'ffffu,    // 2^31 - 1
      0x8000'0000u,    // 2^31
      0xffff'ffffu,    // 2^32 - 1 (EventIndex max — the codec's hot range)
      0x1'0000'0000u,  // 2^32
      0x7fff'ffff'ffff'ffffu,
      0x8000'0000'0000'0000u,
      std::numeric_limits<std::uint64_t>::max()};
  std::string buf;
  for (const std::uint64_t v : values) put_varint(buf, v);
  std::size_t pos = 0;
  for (const std::uint64_t v : values) {
    ASSERT_EQ(get_varint(buf, pos), v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(TsArena, InterningDedupsIdenticalRows) {
  TsArena arena(2, {.intern = true});
  const EventIndex row[3] = {1, 2, 3};
  const EventIndex other[3] = {1, 2, 4};
  const auto h0 = arena.append(ProcessId{0}, row, 3);
  const auto h1 = arena.append(ProcessId{1}, row, 3);  // dedup hit
  const auto h2 = arena.append(ProcessId{0}, other, 3);
  EXPECT_NE(h0, h1);  // handles stay distinct
  EXPECT_EQ(arena.offset_of(h0), arena.offset_of(h1));  // storage shared
  EXPECT_NE(arena.offset_of(h0), arena.offset_of(h2));
  EXPECT_EQ(arena.interned_hits(), 1u);
  EXPECT_EQ(arena.pool_words(), 6u);  // 2 unique rows, not 3
  EXPECT_EQ(arena.values(h1).size(), 3u);
  EXPECT_EQ(arena.component(h1, 2), 3u);
}

TEST(TsArena, ColdCodecRoundTripsWithCheckpointsAndEdgeValues) {
  // Rows of one process: componentwise monotone runs (the delta fast path),
  // a width change (forces a full record), a non-monotone step (forces a
  // full record), and edge values up to 2^32-1.
  TsArena arena(1, {.intern = false, .checkpoint_every = 4});
  std::vector<std::vector<EventIndex>> rows;
  std::vector<EventIndex> cur = {0, 0, 0};
  for (int i = 0; i < 11; ++i) {
    cur[static_cast<std::size_t>(i) % 3] += static_cast<EventIndex>(i);
    rows.push_back(cur);
  }
  rows.push_back({7, 8});                        // width change
  rows.push_back({9, 10});                       // delta again
  rows.push_back({3, 10});                       // negative step → full
  rows.push_back({3, std::numeric_limits<EventIndex>::max()});
  rows.push_back({3, std::numeric_limits<EventIndex>::max()});  // zero delta
  for (const auto& r : rows) arena.append(ProcessId{0}, r);

  const TsArena::ColdRows cold = arena.encode_cold(ProcessId{0});
  EXPECT_EQ(cold.count, rows.size());
  EXPECT_GE(cold.checkpoints.size(), rows.size() / 4);  // every 4th at least

  // Decode in a scattered order — random access must not depend on decode
  // history.
  std::vector<std::size_t> order(rows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), std::mt19937(755));
  std::vector<EventIndex> out;
  for (const std::size_t i : order) {
    TsArena::decode_cold(cold, i, out);
    ASSERT_EQ(out, rows[i]) << "row " << i;
  }
}

TEST(CompactStore, DeltaModeDecodesIdenticalToAbsolute) {
  const Trace trace = generate_web_server({.clients = 10,
                                           .servers = 3,
                                           .backends = 2,
                                           .requests = 80,
                                           .seed = 756});
  ClusterTimestampEngine engine(trace.process_count(),
                                engine_config(5, true),
                                make_merge_on_nth(1.0));
  engine.observe_trace(trace);

  CompactTimestampStore absolute(trace.process_count());
  CompactTimestampStore delta(trace.process_count(),
                              {.delta = true, .checkpoint_every = 8});
  for (const EventId id : trace.delivery_order()) {
    absolute.append(id, engine.timestamp(id));
    delta.append(id, engine.timestamp(id));
  }
  for (const EventId id : trace.delivery_order()) {
    const ClusterTimestamp a = absolute.decode(id);
    const ClusterTimestamp d = delta.decode(id);
    ASSERT_EQ(a.values, d.values) << id;
    ASSERT_EQ(a.is_full(), d.is_full()) << id;
    if (!a.is_full()) {
      ASSERT_EQ(*a.covered, *d.covered) << id;
    }
    ASSERT_EQ(a.values, engine.timestamp(id).values) << id;
  }
}

}  // namespace
}  // namespace ct

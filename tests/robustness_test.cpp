// Robustness and cross-cutting tests: trace-file fuzzing, 300-process scale
// sanity, agreement between every precedence implementation, and boundary
// conditions that individual module tests don't reach.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/batch_hybrid.hpp"
#include "core/engine.hpp"
#include "core/migrating_engine.hpp"
#include "model/trace_builder.hpp"
#include "monitor/monitor.hpp"
#include "timestamp/fm_store.hpp"
#include "trace/generators.hpp"
#include "trace/suite.hpp"
#include "trace/trace_io.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

// ------------------------------------------------------------- file fuzzing

// Randomly corrupt a valid trace file. The reader must either produce a
// structurally valid trace or throw CheckFailure — never crash, hang, or
// return a trace violating builder invariants.
TEST(TraceFuzz, CorruptedFilesNeverCrashTheReader) {
  const Trace original = generate_rpc_business({.groups = 2,
                                                .clients_per_group = 3,
                                                .servers_per_group = 2,
                                                .calls = 60,
                                                .seed = 77});
  std::ostringstream os;
  write_trace(os, original);
  const std::string good = os.str();

  Prng rng(4242);
  std::size_t parsed = 0, rejected = 0;
  for (int round = 0; round < 300; ++round) {
    std::string bad = good;
    // Apply 1–3 mutations: byte flips, deletions, duplications, truncation.
    const std::size_t mutations = 1 + rng.index(3);
    for (std::size_t m = 0; m < mutations; ++m) {
      if (bad.empty()) break;
      switch (rng.index(4)) {
        case 0: {  // flip a byte to a printable character
          bad[rng.index(bad.size())] =
              static_cast<char>('0' + rng.index(75));
          break;
        }
        case 1: {  // delete a span
          const std::size_t at = rng.index(bad.size());
          bad.erase(at, 1 + rng.index(8));
          break;
        }
        case 2: {  // duplicate a line
          const std::size_t at = bad.find('\n', rng.index(bad.size()));
          if (at != std::string::npos) {
            const std::size_t prev = bad.rfind('\n', at - 1);
            const std::size_t begin = prev == std::string::npos ? 0 : prev + 1;
            bad.insert(at + 1, bad.substr(begin, at - begin + 1));
          }
          break;
        }
        case 3: {  // truncate
          bad.resize(rng.index(bad.size()));
          break;
        }
      }
    }
    std::istringstream in(bad);
    try {
      const Trace t = read_trace(in);
      // If it parsed, it must be internally consistent (builder-checked),
      // and usable: run the FM engine over it without faults.
      const FmStore store(t);
      (void)store.stored_elements();
      ++parsed;
    } catch (const CheckFailure&) {
      ++rejected;
    }
  }
  // Most mutations must be rejected; a few may still parse (e.g. flipped
  // comment bytes). Both outcomes are fine — crashes are not.
  EXPECT_GT(rejected, 150u);
  EXPECT_EQ(parsed + rejected, 300u);
}

// Same contract for the binary ("CTB1") format: corrupt varints, flipped
// tags, truncation and bad magic must parse to a valid trace or throw
// CheckFailure — never crash, hang, or over-allocate.
TEST(TraceFuzz, CorruptedBinaryFilesNeverCrashTheReader) {
  const Trace original = generate_rpc_business({.groups = 2,
                                                .clients_per_group = 3,
                                                .servers_per_group = 2,
                                                .calls = 60,
                                                .seed = 77});
  std::ostringstream os;
  write_trace_binary(os, original);
  const std::string good = os.str();

  Prng rng(8484);
  std::size_t parsed = 0, rejected = 0;
  for (int round = 0; round < 300; ++round) {
    std::string bad = good;
    const std::size_t mutations = 1 + rng.index(3);
    for (std::size_t m = 0; m < mutations; ++m) {
      if (bad.empty()) break;
      switch (rng.index(5)) {
        case 0: {  // flip a byte to any value
          bad[rng.index(bad.size())] = static_cast<char>(rng.uniform(0, 255));
          break;
        }
        case 1: {  // delete a span
          const std::size_t at = rng.index(bad.size());
          bad.erase(at, 1 + rng.index(8));
          break;
        }
        case 2: {  // duplicate a span
          const std::size_t at = rng.index(bad.size());
          const std::size_t len =
              std::min<std::size_t>(1 + rng.index(8), bad.size() - at);
          bad.insert(at, bad.substr(at, len));
          break;
        }
        case 3: {  // truncate
          bad.resize(rng.index(bad.size()));
          break;
        }
        case 4: {  // truncated varint: set continuation bits on the tail
          bad.push_back(static_cast<char>(0x80));
          bad.push_back(static_cast<char>(0x80));
          break;
        }
      }
    }
    std::istringstream in(bad);
    try {
      const Trace t = read_trace_binary(in);
      const FmStore store(t);
      (void)store.stored_elements();
      ++parsed;
    } catch (const CheckFailure&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 150u);
  EXPECT_EQ(parsed + rejected, 300u);
}

TEST(TraceFuzz, BinaryBadMagicRejected) {
  const Trace original = generate_ring({.processes = 4, .iterations = 2,
                                        .seed = 9});
  std::ostringstream os;
  write_trace_binary(os, original);
  std::string bad = os.str();
  bad[0] = 'X';  // magic mismatch
  std::istringstream in(bad);
  EXPECT_THROW((void)read_trace_binary(in), CheckFailure);
  // Empty and sub-magic-length inputs as well.
  std::istringstream empty;
  EXPECT_THROW((void)read_trace_binary(empty), CheckFailure);
  std::istringstream tiny(std::string("CT"));
  EXPECT_THROW((void)read_trace_binary(tiny), CheckFailure);
}

TEST(TraceFuzz, RandomGarbageRejected) {
  Prng rng(11);
  for (int round = 0; round < 50; ++round) {
    std::string garbage;
    for (std::size_t i = 0; i < 200; ++i) {
      garbage += static_cast<char>(rng.uniform(9, 126));
    }
    std::istringstream in(garbage);
    EXPECT_THROW((void)read_trace(in), CheckFailure);
  }
}

// -------------------------------------------------------------- scale sanity

// One 300-process suite computation through the full dynamic pipeline, with
// spot-checked precedence against the exact Fidge/Mattern store.
TEST(Scale, ThreeHundredProcessesEndToEnd) {
  const Trace trace = generate_locality_random({.processes = 300,
                                                .group_size = 13,
                                                .intra_rate = 0.88,
                                                .messages = 6000,
                                                .seed = 314});
  ASSERT_EQ(trace.process_count(), 300u);

  ClusterEngineConfig config{.max_cluster_size = 14, .fm_vector_width = 300};
  ClusterTimestampEngine engine(trace.process_count(), config,
                                make_merge_on_nth(10));
  engine.observe_trace(trace);
  const auto stats = engine.stats();
  EXPECT_EQ(stats.events, trace.event_count());
  EXPECT_LT(stats.average_ratio(300), 0.6);

  const FmStore fm(trace);
  Prng rng(5);
  const auto order = trace.delivery_order();
  for (int q = 0; q < 20000; ++q) {
    const EventId e = order[rng.index(order.size())];
    const EventId f = order[rng.index(order.size())];
    ASSERT_EQ(engine.precedes(trace.event(e), trace.event(f)),
              fm.precedes(e, f))
        << e << " vs " << f;
  }
}

// ------------------------------------------------- cross-engine agreement

// Every precedence implementation must give identical answers: precomputed
// FM, dynamic cluster engine (fast test), migrating engine (recursive test),
// batch hybrid, and the monitoring entity fed out of order.
TEST(Agreement, AllEnginesAgreeOnRandomQueries) {
  const Trace trace = generate_tiered_service({.clients = 25,
                                               .frontends = 5,
                                               .app_servers = 6,
                                               .databases = 2,
                                               .requests = 300,
                                               .seed = 88});
  const FmStore fm(trace);

  ClusterEngineConfig config{.max_cluster_size = 7, .fm_vector_width = 300};
  ClusterTimestampEngine fast(trace.process_count(), config,
                              make_merge_on_nth(3));
  fast.observe_trace(trace);

  MigratingEngineConfig mig;
  mig.max_cluster_size = 7;
  mig.fm_vector_width = 300;
  mig.nth_threshold = 3;
  mig.window = 10;
  mig.home_share_low = 0.5;
  MigratingClusterEngine migrating(trace.process_count(), mig);
  migrating.observe_trace(trace);

  BatchHybridConfig hybrid_config;
  hybrid_config.batch_size = trace.event_count() / 2;
  hybrid_config.engine = config;
  BatchHybridEngine hybrid(trace.process_count(), hybrid_config);
  hybrid.observe_trace(trace);

  MonitorOptions monitor_options;
  monitor_options.cluster = config;
  monitor_options.nth_threshold = 3;
  MonitoringEntity monitor(trace.process_count(), monitor_options);
  for (const EventId id : trace.delivery_order()) {
    monitor.ingest(trace.event(id));
  }

  Prng rng(6);
  const auto order = trace.delivery_order();
  for (int q = 0; q < 3000; ++q) {
    const EventId e = order[rng.index(order.size())];
    const EventId f = order[rng.index(order.size())];
    const Event& ev_e = trace.event(e);
    const Event& ev_f = trace.event(f);
    const bool want = fm.precedes(e, f);
    ASSERT_EQ(fast.precedes(ev_e, ev_f), want) << "fast " << e << "," << f;
    ASSERT_EQ(migrating.precedes(ev_e, ev_f), want)
        << "migrating " << e << "," << f;
    ASSERT_EQ(hybrid.precedes(ev_e, ev_f), want)
        << "hybrid " << e << "," << f;
    ASSERT_EQ(monitor.precedes(e, f), want) << "monitor " << e << "," << f;
  }
}

// ----------------------------------------------------- boundary conditions

TEST(BatchHybrid, SyncPairNeverSplitsAcrossTheBatchBoundary) {
  // Construct a trace where a sync pair's first half lands exactly at the
  // configured batch size.
  TraceBuilder b;
  b.add_processes(3);
  b.unary(0);
  b.unary(1);
  b.unary(2);  // 3 events
  b.sync(0, 1);  // events 4 and 5: the pair straddles batch_size = 4
  b.message(1, 2);
  const Trace trace = b.build("boundary", TraceFamily::kDce);

  BatchHybridConfig config;
  config.batch_size = 4;
  config.engine.max_cluster_size = 2;
  config.engine.fm_vector_width = 300;
  BatchHybridEngine engine(3, config);
  engine.observe_trace(trace);  // must not throw (pair buffered together)
  EXPECT_TRUE(engine.clustered());
  EXPECT_EQ(engine.stats().events, trace.event_count());
}

TEST(Engine, SingleProcessTrace) {
  TraceBuilder b;
  b.add_processes(1);
  for (int i = 0; i < 10; ++i) b.unary(0);
  const Trace trace = b.build("solo", TraceFamily::kControl);
  ClusterEngineConfig config{.max_cluster_size = 1, .fm_vector_width = 1};
  ClusterTimestampEngine engine(1, config, make_merge_on_first());
  engine.observe_trace(trace);
  EXPECT_EQ(engine.stats().cluster_receives, 0u);
  EXPECT_TRUE(engine.precedes(trace.event(EventId{0, 1}),
                              trace.event(EventId{0, 5})));
  EXPECT_FALSE(engine.precedes(trace.event(EventId{0, 5}),
                               trace.event(EventId{0, 1})));
}

TEST(Engine, UnreceivedSendsBehaveLikeUnary) {
  TraceBuilder b;
  b.add_processes(2);
  const EventId s1 = b.send(0);  // never received
  b.unary(1);
  const Trace trace = b.build("in-flight", TraceFamily::kControl);
  ClusterEngineConfig config{.max_cluster_size = 2, .fm_vector_width = 300};
  ClusterTimestampEngine engine(2, config, make_merge_on_first());
  engine.observe_trace(trace);
  EXPECT_EQ(engine.stats().cluster_receives, 0u);
  EXPECT_FALSE(engine.precedes(trace.event(s1), trace.event(EventId{1, 1})));
}

TEST(Suite, DeterministicAcrossGenerations) {
  // The frozen suite must regenerate identically (seeds, no wall-clock or
  // address-dependent state).
  const auto first = generate_standard_suite(/*parallel=*/true);
  const auto second = generate_standard_suite(/*parallel=*/false);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].name(), second[i].name());
    ASSERT_EQ(first[i].event_count(), second[i].event_count());
    const auto a = first[i].delivery_order();
    const auto b = second[i].delivery_order();
    for (std::size_t k = 0; k < a.size(); ++k) {
      ASSERT_EQ(a[k], b[k]) << first[i].name() << " position " << k;
    }
  }
}

}  // namespace
}  // namespace ct

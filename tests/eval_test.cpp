// Tests for ct_eval: sweep mechanics, analysis functions, and small-scale
// sanity versions of the paper's range analyses.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/analysis.hpp"
#include "eval/experiment.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ct {
namespace {

TEST(StrategySpec, Names) {
  EXPECT_EQ(StrategySpec::static_greedy().name(), "static-greedy");
  EXPECT_EQ(StrategySpec::merge_on_first().name(), "merge-on-1st");
  EXPECT_EQ(StrategySpec::merge_on_nth(10).name(), "merge-on-Nth(CR>10)");
  EXPECT_EQ(StrategySpec::fixed_contiguous().name(), "fixed-contiguous");
}

TEST(DefaultSizes, TwoToFifty) {
  const auto sizes = default_sizes();
  ASSERT_EQ(sizes.size(), 49u);
  EXPECT_EQ(sizes.front(), 2u);
  EXPECT_EQ(sizes.back(), 50u);
}

TEST(RunCell, RatioIsInUnitRangeAndConsistent) {
  const Trace t = generate_locality_random(
      {.processes = 24, .group_size = 6, .messages = 500, .seed = 71});
  for (const auto& spec :
       {StrategySpec::static_greedy(), StrategySpec::merge_on_first(),
        StrategySpec::merge_on_nth(5)}) {
    const double ratio = run_cell(t, spec, 6, 300);
    EXPECT_GT(ratio, 0.0) << spec.name();
    EXPECT_LE(ratio, 1.0) << spec.name();
    // Deterministic.
    EXPECT_DOUBLE_EQ(ratio, run_cell(t, spec, 6, 300)) << spec.name();
  }
}

TEST(RunCell, RatioLowerBoundIsEncodingWidth) {
  // Even with zero cluster receives the ratio cannot drop below maxCS/width.
  const Trace t = generate_ring({.processes = 20, .iterations = 5, .seed = 3});
  const double ratio = run_cell(t, StrategySpec::merge_on_first(), 10, 300);
  EXPECT_GE(ratio, 10.0 / 300.0 - 1e-12);
}

TEST(RunSweep, ProducesAlignedCurve) {
  const Trace t = generate_web_server({.clients = 12,
                                       .servers = 3,
                                       .backends = 2,
                                       .requests = 80,
                                       .seed = 72});
  const std::vector<std::size_t> sizes{2, 5, 9, 13};
  const SweepRow row =
      run_sweep(t, "web", StrategySpec::merge_on_first(), sizes);
  EXPECT_EQ(row.trace_id, "web");
  EXPECT_EQ(row.family, TraceFamily::kJava);
  ASSERT_EQ(row.ratios.size(), 4u);
  for (const double r : row.ratios) {
    EXPECT_GT(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
  EXPECT_LE(row.best_ratio(),
            *std::min_element(row.ratios.begin(), row.ratios.end()) + 1e-12);
}

TEST(SweepMany, MatchesIndividualRuns) {
  const std::vector<Trace> traces{
      generate_ring({.processes = 10, .iterations = 6, .seed = 73}),
      generate_uniform_random({.processes = 12, .messages = 150, .seed = 74}),
  };
  const std::vector<std::string> ids{"ring", "uniform"};
  const std::vector<TraceFamily> families{TraceFamily::kPvm,
                                          TraceFamily::kControl};
  const std::vector<StrategySpec> specs{StrategySpec::merge_on_first(),
                                        StrategySpec::static_greedy()};
  const std::vector<std::size_t> sizes{2, 4, 8};

  const auto rows = sweep_many(traces, ids, families, specs, sizes);
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t s = 0; s < specs.size(); ++s) {
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const auto& row = rows[s * traces.size() + t];
      EXPECT_EQ(row.trace_id, ids[t]);
      EXPECT_EQ(row.strategy, specs[s].name());
      const SweepRow lone = run_sweep(traces[t], ids[t], specs[s], sizes);
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        EXPECT_DOUBLE_EQ(row.ratios[i], lone.ratios[i])
            << row.strategy << "/" << row.trace_id << " size " << sizes[i];
      }
    }
  }
}

SweepRow fake_row(const std::string& id, std::vector<std::size_t> sizes,
                  std::vector<double> ratios) {
  SweepRow row;
  row.trace_id = id;
  row.strategy = "fake";
  row.sizes = std::move(sizes);
  row.ratios = std::move(ratios);
  return row;
}

TEST(Analysis, SizesWithinTolerance) {
  const SweepRow row = fake_row("a", {2, 3, 4, 5}, {0.30, 0.10, 0.11, 0.13});
  EXPECT_DOUBLE_EQ(row.best_ratio(), 0.10);
  EXPECT_EQ(row.sizes_within(0.2), (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(row.sizes_within(0.35), (std::vector<std::size_t>{3, 4, 5}));
}

TEST(Analysis, CoverageAndGoodSizes) {
  const std::vector<SweepRow> rows{
      fake_row("a", {2, 3, 4}, {0.10, 0.11, 0.30}),
      fake_row("b", {2, 3, 4}, {0.40, 0.20, 0.21}),
  };
  const auto coverage = coverage_by_size(rows, 0.2);
  ASSERT_EQ(coverage.size(), 3u);
  EXPECT_EQ(coverage[0].covered, 1u);  // only a
  EXPECT_EQ(coverage[1].covered, 2u);  // both
  EXPECT_EQ(coverage[2].covered, 1u);  // only b
  EXPECT_DOUBLE_EQ(coverage[1].fraction, 1.0);

  EXPECT_EQ(good_sizes(rows, 0.2, 0), (std::vector<std::size_t>{3}));
  EXPECT_EQ(good_sizes(rows, 0.2, 1), (std::vector<std::size_t>{2, 3, 4}));
}

TEST(Analysis, MissesAtSize) {
  const std::vector<SweepRow> rows{
      fake_row("a", {2, 3}, {0.10, 0.50}),
      fake_row("b", {2, 3}, {0.20, 0.20}),
  };
  const auto misses = misses_at_size(rows, 3, 0.2);
  ASSERT_EQ(misses.size(), 1u);
  EXPECT_EQ(misses[0].trace_id, "a");
  EXPECT_DOUBLE_EQ(misses[0].ratio, 0.50);
  EXPECT_DOUBLE_EQ(misses[0].best, 0.10);
  EXPECT_THROW(misses_at_size(rows, 99, 0.2), CheckFailure);
}

TEST(Analysis, CoverageRejectsMismatchedAxes) {
  const std::vector<SweepRow> rows{
      fake_row("a", {2, 3}, {0.1, 0.2}),
      fake_row("b", {2, 4}, {0.1, 0.2}),
  };
  EXPECT_THROW(coverage_by_size(rows, 0.2), CheckFailure);
}

TEST(Analysis, LongestContiguousRange) {
  EXPECT_TRUE(longest_contiguous_range(std::vector<std::size_t>{}).empty());
  const std::vector<std::size_t> sizes{2, 3, 4, 9, 10, 11, 12, 20};
  const SizeRange r = longest_contiguous_range(sizes);
  EXPECT_EQ(r.lo, 9u);
  EXPECT_EQ(r.hi, 12u);
  EXPECT_EQ(r.length(), 4u);
}

TEST(Analysis, RoughnessDistinguishesSmoothFromJagged) {
  const SweepRow smooth =
      fake_row("s", {2, 3, 4, 5}, {0.20, 0.21, 0.22, 0.23});
  const SweepRow jagged =
      fake_row("j", {2, 3, 4, 5}, {0.20, 0.60, 0.15, 0.55});
  EXPECT_LT(curve_roughness(smooth), curve_roughness(jagged));
}

// Small-scale versions of the paper's claims, on a locality workload where
// they must hold sharply.
TEST(PaperShape, StaticCurveSmootherThanMergeOnFirst) {
  const Trace t = generate_web_server({.clients = 25,
                                       .servers = 4,
                                       .backends = 2,
                                       .requests = 350,
                                       .seed = 75});
  const std::vector<std::size_t> sizes{2, 4, 6, 8, 10, 12, 14, 16, 20, 24};
  const SweepRow stat =
      run_sweep(t, "web", StrategySpec::static_greedy(), sizes);
  const SweepRow m1 =
      run_sweep(t, "web", StrategySpec::merge_on_first(), sizes);
  EXPECT_LE(curve_roughness(stat), curve_roughness(m1) + 0.05);
}

TEST(PaperShape, ClusteringBeatsFmByALot) {
  const Trace t = generate_locality_random({.processes = 48,
                                            .group_size = 8,
                                            .intra_rate = 0.93,
                                            .messages = 2000,
                                            .seed = 76});
  const double ratio = run_cell(t, StrategySpec::static_greedy(), 8, 300);
  EXPECT_LT(ratio, 0.25) << "expected ≥4× saving on planted locality";
}

}  // namespace
}  // namespace ct

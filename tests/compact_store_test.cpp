// Tests for the compact (arena + varint) timestamp store.
#include <gtest/gtest.h>

#include "core/compact_store.hpp"
#include "core/engine.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ct {
namespace {

TEST(CompactStore, RoundTripsEveryTimestamp) {
  const Trace trace = generate_web_server({.clients = 15,
                                           .servers = 4,
                                           .backends = 2,
                                           .requests = 120,
                                           .seed = 61});
  ClusterEngineConfig config{.max_cluster_size = 5, .fm_vector_width = 300};
  ClusterTimestampEngine engine(trace.process_count(), config,
                                make_merge_on_nth(1));
  engine.observe_trace(trace);

  CompactTimestampStore store(trace.process_count());
  for (const EventId id : trace.delivery_order()) {
    store.append(id, engine.timestamp(id));
  }
  EXPECT_EQ(store.events(), trace.event_count());

  for (const EventId id : trace.delivery_order()) {
    const ClusterTimestamp& want = engine.timestamp(id);
    const ClusterTimestamp got = store.decode(id);
    ASSERT_EQ(got.values, want.values) << id;
    ASSERT_EQ(got.is_full(), want.is_full()) << id;
    if (!want.is_full()) {
      ASSERT_EQ(*got.covered, *want.covered) << id;
    }
  }
}

TEST(CompactStore, InternsSharedCoveredSets) {
  // Many events share each cluster incarnation's snapshot; the store must
  // hold each set once. With 4 processes merged into 2 clusters and 100
  // events, the covered-set words are bounded by a handful of sets.
  const Trace trace =
      generate_ring({.processes = 4, .iterations = 25, .seed = 62});
  ClusterEngineConfig config{.max_cluster_size = 2, .fm_vector_width = 300};
  ClusterTimestampEngine engine(trace.process_count(), config,
                                make_merge_on_first());
  engine.observe_trace(trace);

  CompactTimestampStore store(trace.process_count());
  for (const EventId id : trace.delivery_order()) {
    store.append(id, engine.timestamp(id));
  }
  // Footprint well under one u32 per component per event: interning works.
  std::size_t exact_words = 0;
  for (const EventId id : trace.delivery_order()) {
    exact_words += engine.timestamp(id).values.size();
  }
  EXPECT_LT(store.bytes(), exact_words * 4);
}

TEST(CompactStore, RejectsOutOfOrderAppend) {
  CompactTimestampStore store(2);
  ClusterTimestamp ts;
  ts.values = {1, 2};  // full over 2 processes
  store.append(EventId{0, 1}, ts);
  EXPECT_THROW(store.append(EventId{0, 3}, ts), CheckFailure);
  EXPECT_THROW(store.append(EventId{5, 1}, ts), CheckFailure);
}

TEST(CompactStore, RejectsUnknownDecode) {
  CompactTimestampStore store(1);
  EXPECT_THROW((void)store.decode(EventId{0, 1}), CheckFailure);
  EXPECT_THROW((void)store.decode(EventId{3, 1}), CheckFailure);
}

TEST(CompactStore, MuchSmallerThanPaddedAccounting) {
  const Trace trace = generate_locality_random(
      {.processes = 60, .group_size = 10, .messages = 2500, .seed = 63});
  ClusterEngineConfig config{.max_cluster_size = 10, .fm_vector_width = 300};
  ClusterTimestampEngine engine(trace.process_count(), config,
                                make_merge_on_nth(5));
  engine.observe_trace(trace);
  CompactTimestampStore store(trace.process_count());
  for (const EventId id : trace.delivery_order()) {
    store.append(id, engine.timestamp(id));
  }
  EXPECT_LT(store.bytes() * 3,
            static_cast<std::size_t>(engine.stats().encoded_words) * 4);
}

}  // namespace
}  // namespace ct

// Seed-stability lock: every trace generator's output is pinned, per seed,
// to a golden FNV-1a digest (trace/digest.hpp). The generators are the
// substrate of the entire evaluation AND of the simulation checker's
// schedule generator — an accidental change to any of them (a reordered RNG
// draw, an off-by-one in a loop bound) silently invalidates every frozen
// figure and every simcheck seed. This test turns such a change into a
// loud, reviewable diff: if a generator changed ON PURPOSE, regenerate the
// goldens with tests/print_seed_goldens and update this file in the same
// commit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "timestamp/tree_clock_store.hpp"
#include "trace/digest.hpp"
#include "trace/generators.hpp"
#include "trace/suite.hpp"

namespace ct {
namespace {

struct Golden {
  const char* id;
  std::uint64_t digest;
};

// Golden digests of all 54 standard-suite entries, in suite order.
// REGENERATE: build and run tests/print_seed_goldens, paste its output.
constexpr Golden kSuiteGoldens[] = {
    // clang-format off
    {"pvm/ring-64", 0xce3778aedcd401e7ull},
    {"pvm/ring-128", 0xb2ac71daaeb6fd74ull},
    {"pvm/ring-256", 0x14544d2835e9ef1bull},
    {"pvm/halo1d-64", 0xfd098b4e8c18ad30ull},
    {"pvm/halo1d-150", 0xb8dd1a93a154861eull},
    {"pvm/halo1d-300", 0x4f9d1704dd4bfbbcull},
    {"pvm/halo2d-8x8", 0x4757c8f06fe02f6cull},
    {"pvm/halo2d-12x12", 0x8fd5d7740744dbc3ull},
    {"pvm/halo2d-15x20", 0xc0e67e29bbca760bull},
    {"pvm/scatter-gather-97", 0x5d8363ae2dbb86e4ull},
    {"pvm/scatter-gather-65", 0x1c199c995b7a41cbull},
    {"pvm/scatter-gather-129", 0xdfb3cb31fc436b5dull},
    {"pvm/reduction-63", 0x8a4c7dfc2fcf985bull},
    {"pvm/reduction-127", 0xa1376b5c94abcb81ull},
    {"pvm/reduction-255", 0xddfb69ba9877afbbull},
    {"pvm/pipeline-48", 0x09be8a2f236647efull},
    {"pvm/pipeline-96", 0xac61fff6dc387c73ull},
    {"pvm/wavefront-9x9", 0x66afa7a8cd835377ull},
    {"pvm/wavefront-12x12", 0x386f5936afdf20c9ull},
    {"pvm/master-worker-60", 0x0ed89adcdf34ef14ull},
    {"java/web-92", 0x164e364507c62891ull},
    {"java/web-168", 0x167881527081f142ull},
    {"java/web-280", 0xb404bbfab6ac07fbull},
    {"java/web-69-loose", 0x596148b1962fa4a9ull},
    {"java/web-92-sticky", 0x47f24adc7679c75full},
    {"java/tier-86", 0x3e7ed7dbb987a34full},
    {"java/tier-159", 0x3399c58597fe0f0eull},
    {"java/tier-264", 0x54d8bd4a7d7a3dc3ull},
    {"java/tier-86-loose", 0x11a472310576329eull},
    {"java/pubsub-84", 0x4b61668581accf75ull},
    {"java/pubsub-166", 0xbf3d8d783a5d8ab2ull},
    {"java/pubsub-238", 0x77a76895ee62c8a4ull},
    {"java/web-117", 0x0a09716af47169c3ull},
    {"java/tier-120", 0xe1f82ab48178906cull},
    {"java/pubsub-102", 0x6e8ed38a62f2c8b1ull},
    {"java/web-210", 0xf0a8b26da2bde72aull},
    {"dce/rpc-96", 0xc87afab1f470fda5ull},
    {"dce/rpc-144", 0x144059e154058c99ull},
    {"dce/rpc-240", 0xbf84f78cdcc17cf0ull},
    {"dce/rpc-96-chatty", 0xa3b9fa44314ef3d2ull},
    {"dce/rpc-120-wide", 0x322356100dd32099ull},
    {"dce/rpc-60-small", 0xc84ac8c3579b5b54ull},
    {"dce/chain-50", 0x62d80975295d3c99ull},
    {"dce/chain-100", 0x8ffcbf8b50375a01ull},
    {"dce/chain-200", 0x39c04d4ae28363d0ull},
    {"dce/chain-64-short", 0x28e176272142a40eull},
    {"ctl/uniform-100", 0xed8b73ed341f16e6ull},
    {"ctl/uniform-200", 0x623aba109ff0fc13ull},
    {"ctl/local-120-strong", 0x0a58ac7a2f0c5b4eull},
    {"ctl/local-240", 0x1d5acc97844e5a38ull},
    {"ctl/local-120-weak", 0x0fcf012b42ccc202ull},
    {"ctl/local-300", 0xd8e5bb8f66cde8fbull},
    {"ctl/local-60-tight", 0xfbeba244c3db224cull},
    {"ctl/local-100-mid", 0x725872e7c40a8745ull},
    // clang-format on
};

TEST(SeedStability, StandardSuiteDigestsAreFrozen) {
  const auto& suite = standard_suite();
  ASSERT_EQ(suite.size(), std::size(kSuiteGoldens));
  for (std::size_t i = 0; i < suite.size(); ++i) {
    ASSERT_EQ(suite[i].id, std::string(kSuiteGoldens[i].id))
        << "suite order changed at entry " << i;
    const Trace t = suite[i].make();
    EXPECT_EQ(trace_digest(t), kSuiteGoldens[i].digest)
        << "generator output drifted for suite entry '" << suite[i].id
        << "' — if intentional, regenerate the goldens";
  }
}

// Direct per-generator locks with non-suite option combinations, covering
// generators (or option paths) the suite exercises differently — including
// the simulation checker's adversarial motif, which is not a suite member.
TEST(SeedStability, DirectGeneratorDigestsAreFrozen) {
  const std::vector<std::pair<std::string, std::uint64_t>> goldens = {
      {"ring", 0x16269cf3dc41427full},
      {"halo1d", 0x80ffd2305dc4486cull},
      {"halo2d", 0x6af11a2e7fd0551eull},
      {"scatter_gather", 0x97943b9feb45eaf7ull},
      {"reduction_tree", 0x978e9c3938c87a94ull},
      {"pipeline", 0x0b78a7b9b83389d7ull},
      {"wavefront", 0xd94c25aad485309bull},
      {"master_worker", 0xa8b9bf03d639f4c2ull},
      {"butterfly", 0xe5eb1466be412dd5ull},
      {"gossip", 0x57570c0c5597af1full},
      {"token_ring", 0x913815d772c920adull},
      {"web_server", 0x38fa52fbba0f38dbull},
      {"tiered_service", 0x37a9447e3c7d67acull},
      {"pubsub", 0x18d158613b3379abull},
      {"rpc_business", 0x702bc227e8b4fc10ull},
      {"rpc_chain", 0x24f1d0fb3658c927ull},
      {"uniform_random", 0x504f229bf513c1a0ull},
      {"phased_locality", 0x1cf91259e6443904ull},
      {"locality_random", 0xeb8f10697a0f72e0ull},
      {"adversarial", 0x0c8389c4e6d18955ull},
  };
  std::size_t i = 0;
  auto check = [&](const std::string& name, const Trace& t) {
    ASSERT_LT(i, goldens.size());
    EXPECT_EQ(goldens[i].first, name) << "direct golden order changed";
    EXPECT_EQ(trace_digest(t), goldens[i].second)
        << "generator output drifted for " << name;
    ++i;
  };

  check("ring", generate_ring({.processes = 10, .iterations = 6, .seed = 3}));
  check("halo1d", generate_halo1d({.processes = 10, .iterations = 5,
                                   .allreduce_every = 2, .seed = 3}));
  check("halo2d",
        generate_halo2d({.width = 4, .height = 3, .iterations = 4, .seed = 3}));
  check("scatter_gather",
        generate_scatter_gather({.processes = 9, .rounds = 5, .seed = 3}));
  check("reduction_tree",
        generate_reduction_tree({.processes = 8, .rounds = 5, .seed = 3}));
  check("pipeline",
        generate_pipeline({.stages = 6, .items = 10, .seed = 3}));
  check("wavefront",
        generate_wavefront({.width = 4, .height = 4, .sweeps = 3, .seed = 3}));
  check("master_worker",
        generate_master_worker({.processes = 12, .tasks = 40, .pods = 2,
                                .seed = 3}));
  check("butterfly",
        generate_butterfly({.dimensions = 3, .sweeps = 3, .seed = 3}));
  check("gossip", generate_gossip({.processes = 10, .rounds = 6, .seed = 3}));
  check("token_ring",
        generate_token_ring({.processes = 8, .laps = 4, .seed = 3}));
  check("web_server",
        generate_web_server({.clients = 12, .servers = 3, .backends = 2,
                             .requests = 60, .seed = 3}));
  check("tiered_service",
        generate_tiered_service({.clients = 8, .frontends = 3,
                                 .app_servers = 3, .databases = 2,
                                 .requests = 50, .seed = 3}));
  check("pubsub",
        generate_pubsub({.publishers = 4, .brokers = 2, .subscribers = 8,
                         .topics = 4, .subscribers_per_topic = 3,
                         .messages = 50, .seed = 3}));
  check("rpc_business",
        generate_rpc_business({.groups = 3, .clients_per_group = 2,
                               .servers_per_group = 2, .calls = 60,
                               .seed = 3}));
  check("rpc_chain",
        generate_rpc_chain({.services = 8, .chain_length = 4, .requests = 30,
                            .seed = 3}));
  check("uniform_random",
        generate_uniform_random({.processes = 12, .messages = 80, .seed = 3}));
  check("phased_locality",
        generate_phased_locality({.processes = 12, .group_size = 4,
                                  .phases = 2, .messages_per_phase = 40,
                                  .seed = 3}));
  check("locality_random",
        generate_locality_random({.processes = 12, .group_size = 4,
                                  .messages = 80, .seed = 3}));
  check("adversarial",
        generate_adversarial({.processes = 12, .groups = 3, .messages = 90,
                              .seed = 3}));
  EXPECT_EQ(i, goldens.size());
}

// Tree-clock backend state digests (TreeClockStore::state_digest): the
// deterministic replay state of the registry's newest backend — stored rows
// plus final tree shapes — pinned per seed. The digest is layout
// independent, so one golden locks the arena AND legacy stores; both are
// checked. Regenerate with tests/print_seed_goldens on an INTENTIONAL
// change to the tree-clock join/ingest rules.
TEST(SeedStability, TreeClockBackendDigestsAreFrozen) {
  const std::vector<std::pair<std::string, std::uint64_t>> goldens = {
      {"ring", 0xb24a0893858d6efeull},
      {"uniform_random", 0xd55fa2a53ae8523aull},
      {"rpc_business", 0xac1f151067096505ull},
      {"master_worker", 0x11e443de1e8f841cull},
      {"adversarial", 0x1ac1b65a9e876c6bull},
  };
  std::size_t i = 0;
  auto check = [&](const std::string& name, const Trace& t) {
    ASSERT_LT(i, goldens.size());
    EXPECT_EQ(goldens[i].first, name) << "tree-clock golden order changed";
    const TreeClockStore arena(t, /*use_arena=*/true);
    const TreeClockStore legacy(t, /*use_arena=*/false);
    EXPECT_EQ(arena.state_digest(), goldens[i].second)
        << "tree-clock state drifted for " << name
        << " — if intentional, regenerate the goldens";
    EXPECT_EQ(legacy.state_digest(), goldens[i].second)
        << "legacy-layout digest diverged from arena for " << name;
    ++i;
  };

  check("ring", generate_ring({.processes = 10, .iterations = 6, .seed = 3}));
  check("uniform_random",
        generate_uniform_random({.processes = 12, .messages = 80, .seed = 3}));
  check("rpc_business",
        generate_rpc_business({.groups = 3, .clients_per_group = 2,
                               .servers_per_group = 2, .calls = 60,
                               .seed = 3}));
  check("master_worker",
        generate_master_worker({.processes = 12, .tasks = 40, .pods = 2,
                                .seed = 3}));
  check("adversarial",
        generate_adversarial({.processes = 12, .groups = 3, .messages = 90,
                              .seed = 3}));
  EXPECT_EQ(i, goldens.size());
}

}  // namespace
}  // namespace ct

// Tests for ct_timestamp: the Fidge/Mattern engine (exact Figure-2 vectors,
// oracle equivalence), the precomputed store, the on-demand cached engine,
// differential encoding, and direct-dependency vectors.
#include <gtest/gtest.h>

#include <vector>

#include "model/oracle.hpp"
#include "model/trace_builder.hpp"
#include "timestamp/differential.hpp"
#include "timestamp/direct_dependency.hpp"
#include "timestamp/fm_engine.hpp"
#include "timestamp/fm_store.hpp"
#include "timestamp/ondemand_fm.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

/// Reconstruction of the paper's Figure 2 computation:
///   P1: A=send→D, B=send→G, C=recv(E)
///   P2: D=recv(A), E=send→C, F=recv(H)
///   P3: G=recv(B), H=send→F, I=unary
Trace figure2_trace() {
  TraceBuilder b;
  b.add_processes(3);
  const EventId a = b.send(0);
  b.receive(1, a);  // D
  const EventId bb = b.send(0);
  b.receive(2, bb);  // G
  const EventId e = b.send(1);
  b.receive(0, e);  // C
  const EventId h = b.send(2);
  b.receive(1, h);  // F
  b.unary(2);  // I
  return b.build("figure2", TraceFamily::kControl);
}

TEST(FmEngine, Figure2ExactVectors) {
  const Trace t = figure2_trace();
  const FmStore store(t);
  // Paper Figure 2, with our 0-based process ids (P1,P2,P3) → (0,1,2).
  EXPECT_EQ(store.clock(EventId{0, 1}), (FmClock{1, 0, 0}));  // A
  EXPECT_EQ(store.clock(EventId{0, 2}), (FmClock{2, 0, 0}));  // B
  EXPECT_EQ(store.clock(EventId{0, 3}), (FmClock{3, 2, 0}));  // C
  EXPECT_EQ(store.clock(EventId{1, 1}), (FmClock{1, 1, 0}));  // D
  EXPECT_EQ(store.clock(EventId{1, 2}), (FmClock{1, 2, 0}));  // E
  EXPECT_EQ(store.clock(EventId{1, 3}), (FmClock{2, 3, 2}));  // F
  EXPECT_EQ(store.clock(EventId{2, 1}), (FmClock{2, 0, 1}));  // G
  EXPECT_EQ(store.clock(EventId{2, 2}), (FmClock{2, 0, 2}));  // H
  EXPECT_EQ(store.clock(EventId{2, 3}), (FmClock{2, 0, 3}));  // I
}

TEST(FmEngine, RejectsOutOfOrderObservation) {
  FmEngine engine(2);
  Event e{EventId{0, 2}, EventKind::kUnary, kNoEvent};
  EXPECT_THROW(engine.observe(e), CheckFailure);
}

TEST(FmEngine, RejectsReceiveBeforeSend) {
  FmEngine engine(2);
  Event r{EventId{1, 1}, EventKind::kReceive, EventId{0, 1}};
  EXPECT_THROW(engine.observe(r), CheckFailure);
}

TEST(FmEngine, InFlightSendsAreReleasedOnReceive) {
  TraceBuilder b;
  b.add_processes(2);
  const EventId s = b.send(0);
  b.receive(1, s);
  const Trace t = b.build("io", TraceFamily::kControl);
  FmEngine engine(2);
  engine.observe(t.event(EventId{0, 1}));
  EXPECT_EQ(engine.in_flight(), 1u);
  engine.observe(t.event(EventId{1, 1}));
  EXPECT_EQ(engine.in_flight(), 0u);
}

TEST(FmEngine, SyncPairCarriesIdenticalVectors) {
  TraceBuilder b;
  b.add_processes(3);
  b.unary(0);
  b.message(2, 0);
  const auto [x, y] = b.sync(0, 1);
  const Trace t = b.build("sync-fm", TraceFamily::kDce);
  const FmStore store(t);
  EXPECT_EQ(store.clock(x), store.clock(y));
  // Both own components advanced, and P2's history carried over.
  const FmClock& clock = store.clock(x);
  EXPECT_EQ(clock[0], x.index);
  EXPECT_EQ(clock[1], y.index);
  EXPECT_EQ(clock[2], 1u);
}

// Property: the FM precedence test agrees with the transitive-closure oracle
// on every ordered event pair, across generator families.
class FmOracleProperty : public ::testing::TestWithParam<int> {};

Trace property_trace(int which) {
  switch (which) {
    case 0:
      return generate_ring({.processes = 12, .iterations = 8, .seed = 42});
    case 1:
      return generate_scatter_gather(
          {.processes = 9, .rounds = 6, .seed = 43});
    case 2:
      return generate_web_server({.clients = 10,
                                  .servers = 3,
                                  .backends = 2,
                                  .requests = 60,
                                  .seed = 44});
    case 3:
      return generate_rpc_business({.groups = 3,
                                    .clients_per_group = 3,
                                    .servers_per_group = 2,
                                    .calls = 70,
                                    .seed = 45});
    case 4:
      return generate_uniform_random(
          {.processes = 14, .messages = 120, .seed = 46});
    case 5:
      return generate_locality_random({.processes = 18,
                                       .group_size = 6,
                                       .messages = 150,
                                       .seed = 47});
    case 6:
      return generate_pubsub({.publishers = 5,
                              .brokers = 2,
                              .subscribers = 8,
                              .topics = 4,
                              .subscribers_per_topic = 3,
                              .messages = 40,
                              .seed = 48});
    case 7:
      return generate_rpc_chain(
          {.services = 10, .chain_length = 4, .requests = 25, .seed = 49});
    default:
      CT_CHECK(false);
      return {};
  }
}

std::vector<EventId> all_events(const Trace& t) {
  std::vector<EventId> out;
  for (const EventId id : t.delivery_order()) out.push_back(id);
  return out;
}

TEST_P(FmOracleProperty, PrecedenceMatchesOracle) {
  const Trace t = property_trace(GetParam());
  const FmStore store(t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);
  for (const EventId e : events) {
    for (const EventId f : events) {
      ASSERT_EQ(store.precedes(e, f), oracle.happened_before(e, f))
          << "e=" << e << " f=" << f << " in " << t.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, FmOracleProperty,
                         ::testing::Range(0, 8));

// Property: the on-demand engine returns the same clocks as the store,
// regardless of cache size and query order.
class OnDemandProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(OnDemandProperty, ClocksMatchStore) {
  const auto [which, cache] = GetParam();
  const Trace t = property_trace(which);
  const FmStore store(t);
  OnDemandFmEngine engine(t, cache);
  Prng rng(99);
  const auto events = all_events(t);
  for (int q = 0; q < 300; ++q) {
    const EventId e = events[rng.index(events.size())];
    ASSERT_EQ(engine.clock(e), store.clock(e)) << e;
  }
  EXPECT_EQ(engine.counters().queries, 300u);
  EXPECT_GT(engine.counters().computed_events, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OnDemandProperty,
    ::testing::Combine(::testing::Values(0, 2, 3, 4),
                       ::testing::Values(std::size_t{4}, std::size_t{64},
                                         std::size_t{100000})));

TEST(OnDemandFm, CacheHitsOnRepeatedQuery) {
  const Trace t = property_trace(0);
  OnDemandFmEngine engine(t, 1000);
  const EventId target = t.delivery_order().back();
  (void)engine.clock(target);
  const auto computed_first = engine.counters().computed_events;
  (void)engine.clock(target);
  EXPECT_EQ(engine.counters().cache_hits, 1u);
  EXPECT_EQ(engine.counters().computed_events, computed_first);
}

TEST(OnDemandFm, TinyCacheForcesRecomputation) {
  const Trace t = property_trace(0);
  OnDemandFmEngine warm(t, 100000);
  OnDemandFmEngine cold(t, 2);
  const auto events = all_events(t);
  Prng rng(7);
  for (int q = 0; q < 50; ++q) {
    const EventId e = events[rng.index(events.size())];
    (void)warm.clock(e);
    (void)cold.clock(e);
  }
  EXPECT_GT(cold.counters().computed_events,
            warm.counters().computed_events);
}

TEST(OnDemandFm, PrecedesMatchesStore) {
  const Trace t = property_trace(3);
  const FmStore store(t);
  OnDemandFmEngine engine(t, 256);
  const auto events = all_events(t);
  Prng rng(123);
  for (int q = 0; q < 500; ++q) {
    const EventId e = events[rng.index(events.size())];
    const EventId f = events[rng.index(events.size())];
    ASSERT_EQ(engine.precedes(e, f), store.precedes(e, f))
        << e << " vs " << f;
  }
}

// Differential encoding: decodes to exactly the stored clocks, and the
// saving factor behaves as §2.4 reports (bounded by checkpoint overhead).
class DifferentialProperty
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(DifferentialProperty, DecodesExactly) {
  const auto [which, interval] = GetParam();
  const Trace t = property_trace(which);
  const FmStore store(t);
  const DifferentialStore diff(t, interval);
  for (const EventId e : t.delivery_order()) {
    ASSERT_EQ(diff.clock(e), store.clock(e)) << e;
  }
  if (interval > 1) {
    EXPECT_GT(diff.saving_factor(), 1.0);
  } else {
    // All-checkpoints degenerates to full storage plus descriptors.
    EXPECT_LT(diff.saving_factor(), 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DifferentialProperty,
    ::testing::Combine(::testing::Values(0, 1, 4, 5),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{16})));

TEST(Differential, PrecedesMatchesStore) {
  const Trace t = property_trace(5);
  const FmStore store(t);
  const DifferentialStore diff(t, 8);
  const auto events = all_events(t);
  Prng rng(5);
  for (int q = 0; q < 400; ++q) {
    const EventId e = events[rng.index(events.size())];
    const EventId f = events[rng.index(events.size())];
    ASSERT_EQ(diff.precedes(e, f), store.precedes(e, f));
  }
}

TEST(Differential, IntervalOneIsAllCheckpoints) {
  const Trace t = property_trace(0);
  const DifferentialStore diff(t, 1);
  // Every event stores a full vector + descriptor: slightly *worse* than raw.
  EXPECT_EQ(diff.stored_words(),
            t.event_count() * (t.process_count() + 1));
  EXPECT_LT(diff.saving_factor(), 1.0 + 1e-9);
}

TEST(Differential, DecodeCostGrowsWithInterval) {
  const Trace t = property_trace(1);
  const DifferentialStore small(t, 2);
  const DifferentialStore large(t, 32);
  for (const EventId e : t.delivery_order()) {
    (void)small.clock(e);
    (void)large.clock(e);
  }
  EXPECT_LT(small.events_replayed(), large.events_replayed());
  EXPECT_GT(large.saving_factor(), small.saving_factor());
}

// Direct-dependency vectors: tiny storage, search-based precedence that
// must agree with the oracle on all pairs.
class DdvProperty : public ::testing::TestWithParam<int> {};

TEST_P(DdvProperty, PrecedenceMatchesOracle) {
  const Trace t = property_trace(GetParam());
  const CausalityOracle oracle(t);
  const DirectDependencyStore ddv(t);
  const auto events = all_events(t);
  Prng rng(17);
  for (int q = 0; q < 2000; ++q) {
    const EventId e = events[rng.index(events.size())];
    const EventId f = events[rng.index(events.size())];
    ASSERT_EQ(ddv.precedes(e, f), oracle.happened_before(e, f))
        << e << " vs " << f << " in " << t.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, DdvProperty, ::testing::Range(0, 8));

TEST(Ddv, StorageIsTiny) {
  // DDV storage is O(1) words/event; FM is O(N) words/event. Use a wide
  // trace so the asymptotic gap is visible.
  const Trace t =
      generate_uniform_random({.processes = 60, .messages = 400, .seed = 5});
  const DirectDependencyStore ddv(t);
  const FmStore store(t);
  EXPECT_LT(ddv.stored_words() * 10, store.stored_elements());
}

TEST(Ddv, SearchCostIsCounted) {
  const Trace t = property_trace(4);
  const DirectDependencyStore ddv(t);
  const auto events = all_events(t);
  (void)ddv.precedes(events.front(), events.back());
  EXPECT_GT(ddv.edges_traversed(), 0u);
  ddv.reset_counters();
  EXPECT_EQ(ddv.edges_traversed(), 0u);
}

}  // namespace
}  // namespace ct

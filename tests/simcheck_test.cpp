// Tests for the deterministic simulation checker (src/simcheck): schedule
// generation determinism, clean differential runs across the verification
// matrix, replay round-trips, and — the harness's own acceptance test — a
// planted oracle bug that must be caught and shrunk to a tiny replay.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "model/trace.hpp"
#include "simcheck/generator.hpp"
#include "simcheck/oracle.hpp"
#include "simcheck/replay_io.hpp"
#include "simcheck/schedule.hpp"
#include "simcheck/shrink.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"

namespace ct {
namespace {

/// Small deterministic config window covering every backend once.
std::vector<OracleConfig> small_window() {
  return {
      OracleConfig{SimBackend::kEngine, SimStrategy::kMergeFirst, 8, true},
      OracleConfig{SimBackend::kEngine, SimStrategy::kStaticGreedy, 4, false},
      OracleConfig{SimBackend::kCompact, SimStrategy::kMergeNth, 16, true},
      OracleConfig{SimBackend::kRecursive, SimStrategy::kFixedContiguous, 4,
                   true},
      OracleConfig{SimBackend::kBatchHybrid, SimStrategy::kMergeNth, 8, false},
      OracleConfig{SimBackend::kBroker, SimStrategy::kMergeFirst, 8, true},
  };
}

TEST(ScheduleGenerator, DeterministicPerSeed) {
  const SimSchedule a = generate_schedule(42);
  const SimSchedule b = generate_schedule(42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.digest(), b.digest());

  const SimSchedule c = generate_schedule(43);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(ScheduleGenerator, ProducesAllOpKinds) {
  // Across a handful of seeds every op kind must appear (each individual
  // schedule draws its aux-op counts randomly and may omit some).
  std::set<SimOp::Kind> seen;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const SimSchedule s = generate_schedule(seed);
    EXPECT_GT(s.emit_count(), 0u) << "seed " << seed;
    EXPECT_GE(s.probe_count(), 3u) << "seed " << seed;
    // The last op is always the final full probe.
    EXPECT_EQ(s.ops.back().kind, SimOp::Kind::kProbe);
    EXPECT_EQ(s.ops.back().c, 0u);
    for (const SimOp& op : s.ops) seen.insert(op.kind);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(AdversarialMotif, HasTheAdvertisedEdges) {
  AdversarialOptions o;
  o.processes = 12;
  o.groups = 3;
  o.messages = 300;
  o.seed = 9;
  const Trace t = generate_adversarial(o);
  EXPECT_EQ(t.process_count(), 12u);
  EXPECT_GT(t.count(EventKind::kSync), 0u);
  // Some sends stay permanently in flight (unreceived stragglers).
  EXPECT_GT(t.count(EventKind::kSend), t.count(EventKind::kReceive));
  // Self-messages: at least one receive partnered with its own process.
  bool self_message = false;
  for (ProcessId p = 0; p < t.process_count() && !self_message; ++p) {
    for (const Event& e : t.process_events(p)) {
      if (e.kind == EventKind::kReceive && e.partner.process == e.id.process) {
        self_message = true;
        break;
      }
    }
  }
  EXPECT_TRUE(self_message);
}

TEST(DifferentialOracle, CleanSeedsRunWithoutDivergence) {
  const auto window = small_window();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const SimSchedule s = generate_schedule(seed);
    const SimReport report = run_schedule(s, window);
    EXPECT_TRUE(report.ok())
        << "seed " << seed << " diverged at op "
        << report.divergence->op_index << " [" << report.divergence->config
        << "]: " << report.divergence->detail;
    EXPECT_EQ(report.ops_run, s.ops.size());
    EXPECT_GE(report.probes, 3u);
    EXPECT_GT(report.checks, 0u);
  }
}

TEST(DifferentialOracle, FullMatrixShape) {
  const auto matrix = full_matrix();
  EXPECT_EQ(matrix.size(), 110u);  // 4 backends×4×3×2 + broker×2×3×2 + tree×2
  std::set<std::string> labels;
  for (const OracleConfig& cfg : matrix) labels.insert(cfg.label());
  EXPECT_EQ(labels.size(), matrix.size());  // labels are unique
}

TEST(ReplayIo, RoundTripsBitExactly) {
  const SimSchedule s = generate_schedule(77);
  std::stringstream buffer;
  save_replay(buffer, s);
  const SimSchedule loaded = load_replay(buffer);
  EXPECT_EQ(s, loaded);
  EXPECT_EQ(s.digest(), loaded.digest());
}

TEST(ReplayIo, RejectsMalformedInput) {
  std::stringstream bad("not a replay\n");
  EXPECT_THROW(load_replay(bad), CheckFailure);
}

// The acceptance check of the whole harness: plant an "oracle bug" — a
// hook that flips the engine backend's answer for cross-process pairs that
// truly precede — and require the differential run to catch it and the
// shrinker to minimize the witness to a tiny standalone replay.
TEST(Shrinker, PlantedMutationIsCaughtAndShrunk) {
  SimHooks hooks;
  hooks.mutate = [](const OracleConfig& cfg, EventId e, EventId f,
                    bool answer) {
    if (cfg.backend == SimBackend::kEngine && e.process != f.process &&
        answer) {
      return false;  // the planted bug: deny true cross-process precedence
    }
    return answer;
  };
  const auto window = small_window();

  const SimSchedule schedule = generate_schedule(5);
  const SimReport mutated = run_schedule(schedule, window, &hooks);
  ASSERT_FALSE(mutated.ok()) << "planted mutation was not caught";

  const ShrinkResult shrunk = shrink_schedule(
      schedule, [&](const SimSchedule& candidate) {
        return !run_schedule(candidate, window, &hooks).ok();
      });

  // The witness must still fail under the mutation...
  EXPECT_FALSE(run_schedule(shrunk.schedule, window, &hooks).ok());
  // ...be clean under the real oracle (the bug is planted, not real)...
  const SimReport clean = run_schedule(shrunk.schedule, window);
  EXPECT_TRUE(clean.ok()) << clean.divergence->detail;
  // ...and be small: a cross-process happens-before needs only one message.
  EXPECT_LE(shrunk.schedule.emit_count(), 25u)
      << "shrinker left " << shrunk.schedule.emit_count() << " emits";
  EXPECT_LE(shrunk.schedule.probe_count(), 2u);

  // The minimized witness round-trips through the replay format.
  std::stringstream buffer;
  save_replay(buffer, shrunk.schedule);
  const SimSchedule loaded = load_replay(buffer);
  EXPECT_FALSE(run_schedule(loaded, window, &hooks).ok());
}

TEST(Shrinker, RequiresAFailingInput) {
  const auto window = small_window();
  const SimSchedule s = generate_schedule(3);
  EXPECT_THROW(
      shrink_schedule(s,
                      [](const SimSchedule&) { return false; }),
      CheckFailure);
}

}  // namespace
}  // namespace ct

// Replays the checked-in regression corpus (tests/simcheck_corpus/): every
// minimized schedule a past divergence hunt produced — or a hand-planted
// stress scenario — must replay divergence-free against the FULL
// verification matrix, forever. New shrunk replays from CI sweeps get
// dropped into the corpus directory and are picked up automatically.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "simcheck/oracle.hpp"
#include "simcheck/replay_io.hpp"
#include "simcheck/schedule.hpp"

#ifndef CT_SIMCHECK_CORPUS_DIR
#error "CT_SIMCHECK_CORPUS_DIR must point at tests/simcheck_corpus"
#endif

namespace ct {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(CT_SIMCHECK_CORPUS_DIR)) {
    if (entry.path().extension() == ".ctsim") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(SimcheckCorpus, IsNotEmpty) {
  // An empty corpus means the regression suite silently tests nothing.
  EXPECT_GE(corpus_files().size(), 3u);
}

TEST(SimcheckCorpus, EveryReplayIsCleanUnderTheFullMatrix) {
  const std::vector<OracleConfig> matrix = full_matrix();
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const SimSchedule schedule = load_replay(path);
    EXPECT_GT(schedule.ops.size(), 0u);
    const SimReport report = run_schedule(schedule, matrix);
    EXPECT_TRUE(report.ok())
        << "corpus replay diverged at op " << report.divergence->op_index
        << " [" << report.divergence->config
        << "]: " << report.divergence->detail;
    EXPECT_EQ(report.ops_run, schedule.ops.size());
  }
}

TEST(SimcheckCorpus, ReplaysAreMinimized) {
  // Corpus hygiene: replays are supposed to be shrunk before check-in.
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    const SimSchedule schedule = load_replay(path);
    EXPECT_LE(schedule.emit_count(), 120u)
        << "replay looks unshrunk; run it through shrink_schedule first";
  }
}

}  // namespace
}  // namespace ct

// Regenerates the golden digest tables of tests/seed_stability_test.cpp.
// Run after an INTENTIONAL generator change and paste the two blocks into
// the test (suite block, then direct block), in the same commit as the
// change. Any unexplained diff here is a seed-stability break.
#include <cstdio>

#include "timestamp/tree_clock_store.hpp"
#include "trace/digest.hpp"
#include "trace/generators.hpp"
#include "trace/suite.hpp"

namespace ct {
namespace {

void print_direct(const char* name, const Trace& t) {
  std::printf("      {\"%s\", 0x%016llxull},\n", name,
              static_cast<unsigned long long>(trace_digest(t)));
}

void print_tree_clock(const char* name, const Trace& t) {
  const TreeClockStore store(t, /*use_arena=*/true);
  std::printf("      {\"%s\", 0x%016llxull},\n", name,
              static_cast<unsigned long long>(store.state_digest()));
}

int run() {
  std::printf("// ---- suite goldens (kSuiteGoldens) ----\n");
  for (const SuiteEntry& entry : standard_suite()) {
    std::printf("    {\"%s\", 0x%016llxull},\n", entry.id.c_str(),
                static_cast<unsigned long long>(trace_digest(entry.make())));
  }

  std::printf("// ---- direct goldens ----\n");
  print_direct("ring",
               generate_ring({.processes = 10, .iterations = 6, .seed = 3}));
  print_direct("halo1d", generate_halo1d({.processes = 10, .iterations = 5,
                                          .allreduce_every = 2, .seed = 3}));
  print_direct("halo2d", generate_halo2d({.width = 4, .height = 3,
                                          .iterations = 4, .seed = 3}));
  print_direct("scatter_gather", generate_scatter_gather({.processes = 9,
                                                          .rounds = 5,
                                                          .seed = 3}));
  print_direct("reduction_tree", generate_reduction_tree({.processes = 8,
                                                          .rounds = 5,
                                                          .seed = 3}));
  print_direct("pipeline",
               generate_pipeline({.stages = 6, .items = 10, .seed = 3}));
  print_direct("wavefront", generate_wavefront({.width = 4, .height = 4,
                                                .sweeps = 3, .seed = 3}));
  print_direct("master_worker",
               generate_master_worker({.processes = 12, .tasks = 40,
                                       .pods = 2, .seed = 3}));
  print_direct("butterfly", generate_butterfly({.dimensions = 3, .sweeps = 3,
                                                .seed = 3}));
  print_direct("gossip",
               generate_gossip({.processes = 10, .rounds = 6, .seed = 3}));
  print_direct("token_ring",
               generate_token_ring({.processes = 8, .laps = 4, .seed = 3}));
  print_direct("web_server",
               generate_web_server({.clients = 12, .servers = 3,
                                    .backends = 2, .requests = 60,
                                    .seed = 3}));
  print_direct("tiered_service",
               generate_tiered_service({.clients = 8, .frontends = 3,
                                        .app_servers = 3, .databases = 2,
                                        .requests = 50, .seed = 3}));
  print_direct("pubsub",
               generate_pubsub({.publishers = 4, .brokers = 2,
                                .subscribers = 8, .topics = 4,
                                .subscribers_per_topic = 3, .messages = 50,
                                .seed = 3}));
  print_direct("rpc_business",
               generate_rpc_business({.groups = 3, .clients_per_group = 2,
                                      .servers_per_group = 2, .calls = 60,
                                      .seed = 3}));
  print_direct("rpc_chain",
               generate_rpc_chain({.services = 8, .chain_length = 4,
                                   .requests = 30, .seed = 3}));
  print_direct("uniform_random",
               generate_uniform_random({.processes = 12, .messages = 80,
                                        .seed = 3}));
  print_direct("phased_locality",
               generate_phased_locality({.processes = 12, .group_size = 4,
                                         .phases = 2,
                                         .messages_per_phase = 40,
                                         .seed = 3}));
  print_direct("locality_random",
               generate_locality_random({.processes = 12, .group_size = 4,
                                         .messages = 80, .seed = 3}));
  print_direct("adversarial",
               generate_adversarial({.processes = 12, .groups = 3,
                                     .messages = 90, .seed = 3}));

  // Tree-clock backend state digests (kTreeClockGoldens): deterministic
  // replay state of the new backend over fixed seeds — layout-independent,
  // so one golden pins both the arena and legacy stores.
  std::printf("// ---- tree-clock goldens ----\n");
  print_tree_clock("ring",
                   generate_ring({.processes = 10, .iterations = 6,
                                  .seed = 3}));
  print_tree_clock("uniform_random",
                   generate_uniform_random({.processes = 12, .messages = 80,
                                            .seed = 3}));
  print_tree_clock("rpc_business",
                   generate_rpc_business({.groups = 3, .clients_per_group = 2,
                                          .servers_per_group = 2, .calls = 60,
                                          .seed = 3}));
  print_tree_clock("master_worker",
                   generate_master_worker({.processes = 12, .tasks = 40,
                                           .pods = 2, .seed = 3}));
  print_tree_clock("adversarial",
                   generate_adversarial({.processes = 12, .groups = 3,
                                         .messages = 90, .seed = 3}));
  return 0;
}

}  // namespace
}  // namespace ct

int main() { return ct::run(); }

// Fault-tolerant ingestion tests (docs/FAULT_MODEL.md): the seeded fault
// injector, quarantine/eviction accounting under drop/dup/reorder/corrupt
// faults on every trace family of the standard suite, and checkpoint/
// restore round-trips through the CTS1 snapshot format.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "model/event.hpp"
#include "monitor/fault_injector.hpp"
#include "monitor/monitor.hpp"
#include "timestamp/fm_store.hpp"
#include "trace/generators.hpp"
#include "trace/snapshot.hpp"
#include "trace/suite.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

/// Interleaves a trace's per-process streams into one arrival sequence:
/// per-process FIFO, cross-process schedule shuffled and bursty.
std::vector<Event> interleave(const Trace& t, std::uint64_t seed) {
  std::vector<std::vector<Event>> streams(t.process_count());
  for (const EventId id : t.delivery_order()) {
    streams[id.process].push_back(t.event(id));
  }
  std::vector<std::size_t> cursor(t.process_count(), 0);
  std::vector<Event> arrival;
  arrival.reserve(t.event_count());
  Prng rng(seed);
  std::size_t remaining = t.event_count();
  while (remaining > 0) {
    ProcessId p;
    do {
      p = static_cast<ProcessId>(rng.index(t.process_count()));
    } while (cursor[p] >= streams[p].size());
    const std::size_t burst = 1 + rng.index(4);
    for (std::size_t k = 0; k < burst && cursor[p] < streams[p].size(); ++k) {
      arrival.push_back(streams[p][cursor[p]++]);
      --remaining;
    }
  }
  return arrival;
}

const SuiteEntry& suite_entry(const std::string& id) {
  for (const SuiteEntry& entry : standard_suite()) {
    if (entry.id == id) return entry;
  }
  CT_CHECK_MSG(false, "suite entry '" << id << "' not found");
  return standard_suite().front();
}

// One moderate-size computation per trace family of src/trace/suite.cpp.
const char* kFamilyRepresentatives[] = {
    "pvm/wavefront-9x9",   // kPvm
    "java/pubsub-84",      // kJava
    "dce/chain-50",        // kDce (synchronous pairs)
    "ctl/local-60-tight",  // kControl
};

// --------------------------------------------------------- fault injector

TEST(FaultInjector, DeterministicForAGivenSeed) {
  const Trace t = suite_entry("pvm/wavefront-9x9").make();
  const auto arrival = interleave(t, 3);

  const auto run = [&](std::uint64_t seed) {
    std::vector<Event> emitted;
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_rate = 0.03;
    plan.dup_rate = 0.03;
    plan.reorder_rate = 0.05;
    plan.corrupt_rate = 0.02;
    FaultInjector injector(plan,
                           [&](const Event& e) { emitted.push_back(e); });
    for (const Event& e : arrival) injector.push(e);
    injector.flush();
    EXPECT_EQ(injector.stats().seen, arrival.size());
    return emitted;
  };

  const auto first = run(42);
  const auto second = run(42);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], second[i]) << "divergence at " << i;
  }
}

TEST(FaultInjector, CleanPlanIsTransparent) {
  const Trace t = suite_entry("ctl/local-60-tight").make();
  const auto arrival = interleave(t, 5);
  std::vector<Event> emitted;
  FaultInjector injector(FaultPlan{.seed = 1},
                         [&](const Event& e) { emitted.push_back(e); });
  for (const Event& e : arrival) injector.push(e);
  injector.flush();
  ASSERT_EQ(emitted.size(), arrival.size());
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    ASSERT_EQ(emitted[i], arrival[i]);
  }
}

// ------------------------------------- degradation under drop/dup/reorder

// With seeded 1–5% drop/dup/reorder on a representative of every trace
// family, the monitor must absorb the stream without crashing, its health
// counters must account for every record, and precedence answers on pairs
// of fully-delivered events must agree with the Fidge/Mattern oracle.
TEST(FaultTolerance, EveryFamilySurvivesLossAndAgreesWithOracleOnDelivered) {
  for (const char* id : kFamilyRepresentatives) {
    const Trace t = suite_entry(id).make();
    const FmStore oracle(t);
    const auto arrival = interleave(t, 11);

    for (const double rate : {0.01, 0.05}) {
      MonitorOptions options;
      options.cluster.max_cluster_size = 8;
      options.cluster.fm_vector_width = 300;
      MonitoringEntity monitor(t.process_count(), options);

      FaultPlan plan;
      plan.seed = 1000 + static_cast<std::uint64_t>(rate * 100);
      plan.drop_rate = rate;
      plan.dup_rate = rate;
      plan.reorder_rate = rate;
      FaultInjector injector(plan,
                             [&](const Event& e) { monitor.ingest(e); });
      for (const Event& e : arrival) injector.push(e);
      injector.flush();

      const MonitorHealth health = monitor.health();
      ASSERT_TRUE(health.accounted())
          << id << " rate " << rate << ": ingested " << health.ingested
          << " != delivered " << health.delivered << " + dup "
          << health.duplicates << " + rejected " << health.rejected
          << " + evicted " << health.evicted << " + pending "
          << health.pending << " + quarantined " << health.quarantined;
      ASSERT_EQ(health.ingested, injector.stats().forwarded) << id;
      ASSERT_EQ(health.delivered, monitor.stored()) << id;
      // Losses really occurred and really cost deliveries.
      ASSERT_GT(injector.stats().dropped, 0u) << id;
      ASSERT_LT(monitor.stored(), t.event_count()) << id;

      // Delivered events of each process form a contiguous prefix; sampled
      // precedence answers on delivered pairs match the oracle exactly.
      // (Loss cascades through receives, so under heavy drop rates on
      // tightly coupled computations the delivered set can be small — we
      // sample from it directly.)
      std::vector<EventId> deliverable;
      for (ProcessId p = 0; p < t.process_count(); ++p) {
        for (EventIndex i = 1; i <= monitor.delivered_count(p); ++i) {
          deliverable.push_back(EventId{p, i});
        }
      }
      ASSERT_EQ(deliverable.size(), monitor.stored()) << id;
      ASSERT_GT(deliverable.size(), 1u) << id;
      Prng rng(17);
      for (int q = 0; q < 4000; ++q) {
        const EventId e = rng.pick(deliverable);
        const EventId f = rng.pick(deliverable);
        ASSERT_EQ(monitor.precedes(e, f), oracle.precedes(e, f))
            << id << " rate " << rate << ": " << e << " vs " << f;
      }
    }
  }
}

// Corruption on top, with bounded buffering: still no crash, still fully
// accounted. (Corrupted records may parse as plausible events, so oracle
// agreement is out of scope here — docs/FAULT_MODEL.md.)
TEST(FaultTolerance, CorruptionWithBoundedBufferStaysAccounted) {
  for (const char* id : kFamilyRepresentatives) {
    const Trace t = suite_entry(id).make();
    const auto arrival = interleave(t, 23);

    MonitorOptions options;
    options.cluster.max_cluster_size = 8;
    options.cluster.fm_vector_width = 300;
    options.delivery.max_buffered = 256;
    options.delivery.orphan_timeout = 2000;
    MonitoringEntity monitor(t.process_count(), options);

    FaultPlan plan;
    plan.seed = 99;
    plan.drop_rate = 0.02;
    plan.dup_rate = 0.02;
    plan.reorder_rate = 0.03;
    plan.corrupt_rate = 0.02;
    FaultInjector injector(plan,
                           [&](const Event& e) { monitor.ingest(e); });
    for (const Event& e : arrival) injector.push(e);
    injector.flush();

    const MonitorHealth health = monitor.health();
    ASSERT_TRUE(health.accounted()) << id;
    ASSERT_LE(health.pending + health.quarantined, 256u) << id;
    ASSERT_GT(injector.stats().corrupted, 0u) << id;
    // Corrupt kinds / out-of-range processes must have been caught.
    ASSERT_GT(health.rejected + health.quarantined + health.evicted, 0u)
        << id;
  }
}

// ------------------------------------------------------ checkpoint/restore

void round_trip_backend(TimestampBackend backend) {
  const Trace t = suite_entry("java/pubsub-84").make();
  const auto arrival = interleave(t, 31);
  const std::size_t cut = arrival.size() * 3 / 5;

  MonitorOptions options;
  options.backend = backend;
  options.cluster.max_cluster_size = 8;
  options.cluster.fm_vector_width = 300;
  MonitoringEntity original(t.process_count(), options);
  for (std::size_t i = 0; i < cut; ++i) original.ingest(arrival[i]);
  ASSERT_GT(original.pending(), 0u)
      << "cut landed on a quiescent point; pick another seed";

  std::ostringstream os;
  save_snapshot(os, original);
  std::istringstream is(os.str());
  auto restored = load_snapshot(is);
  ASSERT_EQ(restored->stored(), original.stored());
  ASSERT_EQ(restored->state_digest(), original.state_digest());
  ASSERT_EQ(restored->timestamp_words(), original.timestamp_words());

  // Buffered-at-cut records are not in the snapshot: replay the stream with
  // overlap — already-delivered records drop as duplicates — then the tail.
  for (std::size_t i = 0; i < cut; ++i) restored->ingest(arrival[i]);
  for (std::size_t i = cut; i < arrival.size(); ++i) {
    original.ingest(arrival[i]);
    restored->ingest(arrival[i]);
  }
  ASSERT_EQ(original.stored(), t.event_count());
  ASSERT_EQ(restored->stored(), t.event_count());
  ASSERT_GT(restored->health().duplicates, 0u);
  ASSERT_TRUE(restored->health().accounted());

  // Identical precedence answers and identical storage accounting.
  ASSERT_EQ(restored->state_digest(), original.state_digest());
  ASSERT_EQ(restored->timestamp_words(), original.timestamp_words());
  Prng rng(37);
  const auto order = t.delivery_order();
  for (int q = 0; q < 4000; ++q) {
    const EventId e = order[rng.index(order.size())];
    const EventId f = order[rng.index(order.size())];
    ASSERT_EQ(restored->precedes(e, f), original.precedes(e, f))
        << e << " vs " << f;
  }
}

TEST(Snapshot, RoundTripMidStreamClusterBackend) {
  round_trip_backend(TimestampBackend::kClusterDynamic);
}

TEST(Snapshot, RoundTripMidStreamFmBackend) {
  round_trip_backend(TimestampBackend::kPrecomputedFm);
}

TEST(Snapshot, FileRoundTripAndPathInErrors) {
  const Trace t = suite_entry("ctl/local-60-tight").make();
  MonitorOptions options;
  options.cluster.max_cluster_size = 6;
  options.cluster.fm_vector_width = 300;
  MonitoringEntity monitor(t.process_count(), options);
  for (const EventId id : t.delivery_order()) monitor.ingest(t.event(id));

  const std::string path = "fault_test_snapshot.cts";
  save_snapshot(path, monitor);
  auto restored = load_snapshot(path);
  EXPECT_EQ(restored->state_digest(), monitor.state_digest());
  std::remove(path.c_str());

  try {
    (void)load_snapshot("does-not-exist.cts");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& f) {
    EXPECT_NE(std::string(f.what()).find("does-not-exist.cts"),
              std::string::npos);
  }
}

TEST(Snapshot, CorruptSnapshotsAreRejectedNotCrashing) {
  const Trace t = suite_entry("ctl/local-60-tight").make();
  MonitorOptions options;
  options.cluster.max_cluster_size = 6;
  options.cluster.fm_vector_width = 300;
  MonitoringEntity monitor(t.process_count(), options);
  for (const EventId id : t.delivery_order()) monitor.ingest(t.event(id));

  std::ostringstream os;
  save_snapshot(os, monitor);
  const std::string good = os.str();

  // Bad magic and unsupported version.
  for (const std::size_t at : {std::size_t{0}, std::size_t{4}}) {
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] + 1);
    std::istringstream in(bad);
    EXPECT_THROW((void)load_snapshot(in), CheckFailure);
  }
  // Random mutations: restore either succeeds bit-identically (mutation in
  // a dead byte is impossible here — digest covers the state) or throws.
  Prng rng(71);
  std::size_t rejected = 0;
  for (int round = 0; round < 60; ++round) {
    std::string bad = good;
    const std::size_t at = 5 + rng.index(bad.size() - 5);
    bad[at] = static_cast<char>(rng.uniform(0, 255));
    if (bad == good) continue;
    std::istringstream in(bad);
    try {
      auto restored = load_snapshot(in);
      EXPECT_EQ(restored->state_digest(), monitor.state_digest());
    } catch (const CheckFailure&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 20u);
  // Truncations.
  for (const double frac : {0.1, 0.5, 0.9}) {
    std::istringstream in(good.substr(
        0, static_cast<std::size_t>(static_cast<double>(good.size()) * frac)));
    EXPECT_THROW((void)load_snapshot(in), CheckFailure);
  }
}

// Exhaustive truncation sweep: a CTS1 snapshot cut at *any* byte boundary
// must be rejected with a CheckFailure — never crash, hang, or silently
// restore a partial monitor.
TEST(Snapshot, EveryTruncationLengthIsRejected) {
  // A small computation keeps the exhaustive O(bytes²) sweep fast.
  const Trace t = generate_rpc_business({.groups = 1,
                                         .clients_per_group = 2,
                                         .servers_per_group = 1,
                                         .calls = 12,
                                         .seed = 9});
  MonitorOptions options;
  options.cluster.max_cluster_size = 2;
  options.cluster.fm_vector_width = 8;
  MonitoringEntity monitor(t.process_count(), options);
  for (const EventId id : t.delivery_order()) monitor.ingest(t.event(id));

  std::ostringstream os;
  save_snapshot(os, monitor);
  const std::string good = os.str();
  ASSERT_GT(good.size(), 16u);

  for (std::size_t len = 0; len < good.size(); ++len) {
    std::istringstream in(good.substr(0, len));
    try {
      (void)load_snapshot(in);
      FAIL() << "truncation to " << len << " of " << good.size()
             << " bytes restored successfully";
    } catch (const CheckFailure&) {
      // Expected: a clear, typed rejection.
    }
  }
  // The untruncated snapshot still restores.
  std::istringstream in(good);
  EXPECT_EQ(load_snapshot(in)->state_digest(), monitor.state_digest());
}

// Multi-byte corruption: clusters of flipped bytes (as from a torn or
// bit-rotted block) are either rejected or provably harmless — a restore
// that succeeds must be digest-identical to the original. Never a crash,
// never a silently different monitor.
TEST(Snapshot, MultiByteCorruptionNeverSilentlyAccepted) {
  const Trace t = suite_entry("dce/chain-50").make();
  MonitorOptions options;
  options.cluster.max_cluster_size = 6;
  options.cluster.fm_vector_width = 300;
  MonitoringEntity monitor(t.process_count(), options);
  for (const EventId id : t.delivery_order()) monitor.ingest(t.event(id));

  std::ostringstream os;
  save_snapshot(os, monitor);
  const std::string good = os.str();

  Prng rng(113);
  std::size_t rejected = 0;
  for (int round = 0; round < 80; ++round) {
    std::string bad = good;
    const std::size_t burst = 2 + rng.index(15);  // 2..16 corrupted bytes
    const bool contiguous = round % 2 == 0;
    std::size_t at = rng.index(bad.size());
    for (std::size_t k = 0; k < burst; ++k) {
      if (!contiguous) at = rng.index(bad.size());
      bad[at % bad.size()] =
          static_cast<char>(rng.uniform(0, 255));
      ++at;
    }
    if (bad == good) continue;
    std::istringstream in(bad);
    try {
      auto restored = load_snapshot(in);
      EXPECT_EQ(restored->state_digest(), monitor.state_digest())
          << "round " << round << " restored a different monitor";
    } catch (const CheckFailure&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 40u);
}

// ------------------------------------------------- accounting property test

// Property: the MonitorHealth conservation law
//   ingested == delivered + duplicates + rejected + evicted
//            + pending + quarantined
// holds under combined drop+duplicate+reorder faults on EVERY computation
// of the frozen 54-entry suite, for both unbounded and bounded buffering.
TEST(FaultTolerance, HealthInvariantHoldsAcrossEntireSuite) {
  const std::vector<Trace> traces = generate_standard_suite();
  const auto& entries = standard_suite();
  ASSERT_EQ(traces.size(), entries.size());

  for (std::size_t i = 0; i < traces.size(); ++i) {
    const Trace& t = traces[i];
    const auto arrival = interleave(t, 41 + i);

    for (const bool bounded : {false, true}) {
      MonitorOptions options;
      options.cluster.max_cluster_size = 8;
      options.cluster.fm_vector_width = 300;
      if (bounded) {
        options.delivery.max_buffered = 128;
        options.delivery.orphan_timeout = 1000;
      }
      MonitoringEntity monitor(t.process_count(), options);

      FaultPlan plan;
      plan.seed = 7000 + i;
      plan.drop_rate = 0.02;
      plan.dup_rate = 0.04;
      plan.reorder_rate = 0.06;
      FaultInjector injector(plan,
                             [&](const Event& e) { monitor.ingest(e); });
      for (const Event& e : arrival) injector.push(e);
      injector.flush();

      const MonitorHealth health = monitor.health();
      ASSERT_TRUE(health.accounted())
          << entries[i].id << (bounded ? " (bounded)" : " (unbounded)")
          << ": ingested " << health.ingested << " != delivered "
          << health.delivered << " + dup " << health.duplicates
          << " + rejected " << health.rejected << " + evicted "
          << health.evicted << " + pending " << health.pending
          << " + quarantined " << health.quarantined;
      ASSERT_EQ(health.ingested, injector.stats().forwarded)
          << entries[i].id;
      ASSERT_EQ(health.delivered, monitor.stored()) << entries[i].id;
      if (bounded) {
        ASSERT_LE(health.pending + health.quarantined, 128u)
            << entries[i].id;
      }
    }
  }
}

}  // namespace
}  // namespace ct

// Unit + randomized model tests for the B+-tree and the event-store index.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "index/bplus_tree.hpp"
#include "index/event_index.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

TEST(BPlusTree, InsertFindSmall) {
  BPlusTree<int, int> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.insert_or_assign(5, 50));
  EXPECT_TRUE(tree.insert_or_assign(3, 30));
  EXPECT_FALSE(tree.insert_or_assign(5, 55));  // overwrite
  EXPECT_EQ(tree.size(), 2u);
  ASSERT_NE(tree.find(5), nullptr);
  EXPECT_EQ(*tree.find(5), 55);
  EXPECT_EQ(tree.find(4), nullptr);
  tree.validate();
}

TEST(BPlusTree, SplitsGrowDepth) {
  BPlusTree<int, int, 8> tree;
  for (int i = 0; i < 1000; ++i) tree.insert_or_assign(i, i * 2);
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GT(tree.depth(), 2u);
  tree.validate();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(tree.find(i), nullptr) << i;
    EXPECT_EQ(*tree.find(i), i * 2);
  }
}

TEST(BPlusTree, EraseRebalances) {
  BPlusTree<int, int, 8> tree;
  for (int i = 0; i < 500; ++i) tree.insert_or_assign(i, i);
  for (int i = 0; i < 500; i += 2) EXPECT_TRUE(tree.erase(i));
  EXPECT_FALSE(tree.erase(0));  // already gone
  EXPECT_EQ(tree.size(), 250u);
  tree.validate();
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(tree.find(i) != nullptr, i % 2 == 1) << i;
  }
}

TEST(BPlusTree, EraseToEmptyAndReuse) {
  BPlusTree<int, int, 8> tree;
  for (int i = 0; i < 200; ++i) tree.insert_or_assign(i, i);
  for (int i = 199; i >= 0; --i) EXPECT_TRUE(tree.erase(i));
  EXPECT_TRUE(tree.empty());
  tree.validate();
  tree.insert_or_assign(42, 1);
  EXPECT_EQ(tree.size(), 1u);
  tree.validate();
}

TEST(BPlusTree, ScanFromVisitsInOrder) {
  BPlusTree<int, int, 8> tree;
  for (int i = 0; i < 300; i += 3) tree.insert_or_assign(i, i);
  std::vector<int> seen;
  tree.scan_from(100, [&](const int& k, const int&) {
    seen.push_back(k);
    return k < 150;
  });
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), 102);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], seen[i - 1] + 3);
  }
  EXPECT_GE(seen.back(), 150);
}

TEST(BPlusTree, FindLe) {
  BPlusTree<int, int, 8> tree;
  for (int i = 10; i <= 100; i += 10) tree.insert_or_assign(i, i);
  auto [k1, v1] = tree.find_le(55);
  ASSERT_NE(k1, nullptr);
  EXPECT_EQ(*k1, 50);
  EXPECT_EQ(*v1, 50);
  auto [k2, v2] = tree.find_le(10);
  ASSERT_NE(k2, nullptr);
  EXPECT_EQ(*k2, 10);
  auto [k3, v3] = tree.find_le(5);
  EXPECT_EQ(k3, nullptr);
  EXPECT_EQ(v3, nullptr);
  auto [k4, v4] = tree.find_le(1000);
  ASSERT_NE(k4, nullptr);
  EXPECT_EQ(*k4, 100);
  (void)v2;
  (void)v4;
}

// Randomized model check against std::map: interleaved inserts, overwrites,
// erases and lookups, with structural validation throughout.
class BPlusTreeModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BPlusTreeModel, AgreesWithStdMap) {
  Prng rng(GetParam());
  BPlusTree<std::uint64_t, std::uint64_t, 8> tree;
  std::map<std::uint64_t, std::uint64_t> model;
  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t key = rng.uniform(0, 500);
    const std::uint64_t op = rng.uniform(0, 99);
    if (op < 50) {
      const std::uint64_t value = rng();
      EXPECT_EQ(tree.insert_or_assign(key, value),
                model.insert_or_assign(key, value).second);
    } else if (op < 80) {
      EXPECT_EQ(tree.erase(key), model.erase(key) == 1);
    } else {
      const auto* found = tree.find(key);
      const auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_EQ(found, nullptr);
      } else {
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(*found, it->second);
      }
    }
    if (step % 512 == 0) tree.validate();
  }
  tree.validate();
  EXPECT_EQ(tree.size(), model.size());
  // Full in-order agreement.
  auto it = model.begin();
  tree.for_each([&](const std::uint64_t& k, const std::uint64_t& v) {
    EXPECT_NE(it, model.end());
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
    return true;
  });
  EXPECT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeModel,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(EventStoreIndex, InsertLookupEraseScan) {
  EventStoreIndex index;
  for (ProcessId p = 0; p < 5; ++p) {
    for (EventIndex i = 1; i <= 50; ++i) {
      EXPECT_TRUE(index.insert(EventId{p, i}, p * 1000 + i));
    }
  }
  EXPECT_EQ(index.size(), 250u);
  index.validate();
  EXPECT_EQ(index.lookup(EventId{3, 7}).value(), 3007u);
  EXPECT_FALSE(index.lookup(EventId{3, 51}).has_value());
  EXPECT_THROW(index.insert(kNoEvent, 0), CheckFailure);

  std::vector<EventIndex> seen;
  index.scan_process(2, 45, [&](EventId id, RecordHandle) {
    seen.push_back(id.index);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<EventIndex>{45, 46, 47, 48, 49, 50}));

  // Scan never crosses into the next process.
  std::size_t count = 0;
  index.scan_process(4, 1, [&](EventId id, RecordHandle) {
    EXPECT_EQ(id.process, 4u);
    ++count;
    return true;
  });
  EXPECT_EQ(count, 50u);

  EXPECT_TRUE(index.erase(EventId{2, 45}));
  EXPECT_FALSE(index.erase(EventId{2, 45}));
  EXPECT_FALSE(index.lookup(EventId{2, 45}).has_value());
}

TEST(EventStoreIndex, FloorQueries) {
  EventStoreIndex index;
  index.insert(EventId{1, 10}, 110);
  index.insert(EventId{1, 20}, 120);
  index.insert(EventId{2, 5}, 205);

  auto f = index.floor(1, 15);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->first, (EventId{1, 10}));

  f = index.floor(1, 20);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->first, (EventId{1, 20}));

  EXPECT_FALSE(index.floor(1, 9).has_value());
  EXPECT_FALSE(index.floor(0, 100).has_value());
  // Floor in process 2 must not bleed into process 1's entries.
  f = index.floor(2, 4);
  EXPECT_FALSE(f.has_value());
}

}  // namespace
}  // namespace ct

// Tests for the visualization-query layer (causal frontiers) and for
// MID-STREAM behaviour: the dynamic engine must answer queries correctly at
// every prefix of the observation, not just at the end — that is the whole
// point of a dynamic timestamp (§3.2).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "model/oracle.hpp"
#include "model/trace_builder.hpp"
#include "monitor/monitor.hpp"
#include "monitor/queries.hpp"
#include "trace/generators.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

// ------------------------------------------------------------ frontiers

class FrontierProperty : public ::testing::TestWithParam<int> {};

Trace frontier_trace(int which) {
  switch (which) {
    case 0:
      return generate_web_server({.clients = 10,
                                  .servers = 3,
                                  .backends = 2,
                                  .requests = 60,
                                  .seed = 501});
    case 1:
      return generate_rpc_business({.groups = 2,
                                    .clients_per_group = 3,
                                    .servers_per_group = 2,
                                    .calls = 50,
                                    .seed = 502});
    case 2:
      return generate_ring({.processes = 8, .iterations = 8, .seed = 503});
    default:
      return generate_uniform_random(
          {.processes = 10, .messages = 100, .seed = 504});
  }
}

TEST_P(FrontierProperty, MatchesBruteForceOracle) {
  const Trace trace = frontier_trace(GetParam());
  const CausalityOracle oracle(trace);

  MonitorOptions options;
  options.cluster.max_cluster_size = 4;
  options.cluster.fm_vector_width = 300;
  options.nth_threshold = 1.0;
  MonitoringEntity monitor(trace.process_count(), options);
  for (const EventId id : trace.delivery_order()) {
    monitor.ingest(trace.event(id));
  }

  Prng rng(7);
  const auto order = trace.delivery_order();
  for (int probe = 0; probe < 40; ++probe) {
    const EventId e = order[rng.index(order.size())];
    const auto frontiers =
        compute_frontiers(monitor, trace.process_count(), e);
    for (ProcessId q = 0; q < trace.process_count(); ++q) {
      // Brute-force references from the oracle.
      EventIndex want_pred = 0, want_conc = 0;
      for (EventIndex i = 1; i <= trace.process_size(q); ++i) {
        if (oracle.happened_before(EventId{q, i}, e)) want_pred = i;
        if (oracle.concurrent(EventId{q, i}, e)) want_conc = i;
      }
      ASSERT_EQ(frontiers.greatest_predecessor[q], want_pred)
          << "pred, e=" << e << " q=" << q;
      ASSERT_EQ(frontiers.greatest_concurrent[q], want_conc)
          << "conc, e=" << e << " q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Traces, FrontierProperty, ::testing::Range(0, 4));

TEST(Frontiers, CostIsLogarithmicPerProcess) {
  const Trace trace =
      generate_ring({.processes = 16, .iterations = 40, .seed = 505});
  MonitorOptions options;
  options.cluster.max_cluster_size = 4;
  options.cluster.fm_vector_width = 300;
  MonitoringEntity monitor(trace.process_count(), options);
  for (const EventId id : trace.delivery_order()) {
    monitor.ingest(trace.event(id));
  }
  const auto frontiers = compute_frontiers(monitor, trace.process_count(),
                                           EventId{0, 10});
  // 2 binary searches per process over ≤ E/N events each.
  const double per_process =
      static_cast<double>(frontiers.precedence_tests) / 16.0;
  EXPECT_LT(per_process, 2.0 * 12.0);  // 2 * ceil(log2(~200)) + slack
}

TEST(Frontiers, OwnProcessNeverConcurrent) {
  TraceBuilder b;
  b.add_processes(2);
  for (int i = 0; i < 6; ++i) b.unary(0);
  b.unary(1);
  const Trace trace = b.build("own", TraceFamily::kControl);
  MonitorOptions options;
  options.cluster.max_cluster_size = 2;
  options.cluster.fm_vector_width = 300;
  MonitoringEntity monitor(2, options);
  for (const EventId id : trace.delivery_order()) {
    monitor.ingest(trace.event(id));
  }
  const auto frontiers = compute_frontiers(monitor, 2, EventId{0, 3});
  EXPECT_EQ(frontiers.greatest_predecessor[0], 2u);
  EXPECT_EQ(frontiers.greatest_concurrent[0], 0u);  // own process: never
  EXPECT_EQ(frontiers.greatest_predecessor[1], 0u);
  EXPECT_EQ(frontiers.greatest_concurrent[1], 1u);
}

TEST(Frontiers, SyncPartnerIsConcurrent) {
  TraceBuilder b;
  b.add_processes(2);
  const auto [a, partner] = b.sync(0, 1);
  const Trace trace = b.build("sync-conc", TraceFamily::kDce);
  MonitorOptions options;
  options.cluster.max_cluster_size = 1;  // force cluster receives
  options.cluster.fm_vector_width = 300;
  MonitoringEntity monitor(2, options);
  for (const EventId id : trace.delivery_order()) {
    monitor.ingest(trace.event(id));
  }
  const auto frontiers = compute_frontiers(monitor, 2, a);
  EXPECT_EQ(frontiers.greatest_concurrent[partner.process], partner.index);
  EXPECT_EQ(frontiers.greatest_predecessor[partner.process], 0u);
}

// ------------------------------------------------------- mid-stream queries

// Observe events one at a time; after every few events, check random
// precedence queries over the already-observed prefix against an oracle of
// the full trace (valid: precedence among past events never changes).
class MidStreamProperty : public ::testing::TestWithParam<int> {};

TEST_P(MidStreamProperty, QueriesCorrectAtEveryPrefix) {
  const Trace trace = frontier_trace(GetParam());
  const CausalityOracle oracle(trace);

  for (const double threshold : {-1.0, 2.0}) {
    ClusterEngineConfig config{.max_cluster_size = 4,
                               .fm_vector_width = 300};
    auto policy = threshold < 0 ? make_merge_on_first()
                                : make_merge_on_nth(threshold);
    ClusterTimestampEngine engine(trace.process_count(), config,
                                  std::move(policy));
    Prng rng(17);
    std::vector<EventId> seen;
    for (const EventId id : trace.delivery_order()) {
      engine.observe(trace.event(id));
      seen.push_back(id);
      if (seen.size() % 5 != 0) continue;
      for (int q = 0; q < 8; ++q) {
        const EventId a = seen[rng.index(seen.size())];
        const EventId b = seen[rng.index(seen.size())];
        ASSERT_EQ(engine.precedes(trace.event(a), trace.event(b)),
                  oracle.happened_before(a, b))
            << a << " vs " << b << " after " << seen.size() << " events"
            << " (threshold " << threshold << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Traces, MidStreamProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace ct

// Tests for the resilient query broker: deadlines, admission control,
// fallback chain with circuit breakers, and the online integrity audit
// with self-repair (docs/FAULT_MODEL.md §6).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "model/oracle.hpp"
#include "monitor/monitor.hpp"
#include "monitor/queries.hpp"
#include "monitor/query_broker.hpp"
#include "trace/generators.hpp"
#include "util/epoch.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace ct {
namespace {

Trace small_trace() {
  return generate_rpc_business({.groups = 2,
                                .clients_per_group = 2,
                                .servers_per_group = 2,
                                .calls = 40,
                                .seed = 51});
}

MonitorOptions broker_monitor_options(const Trace& t,
                                      TimestampBackend backend =
                                          TimestampBackend::kClusterDynamic) {
  MonitorOptions options;
  options.backend = backend;
  options.cluster.max_cluster_size = 4;
  options.cluster.fm_vector_width = t.process_count();
  return options;
}

void feed(MonitoringEntity& monitor, const Trace& t) {
  for (const EventId id : t.delivery_order()) monitor.ingest(t.event(id));
}

std::vector<EventId> all_events(const Trace& t) {
  return {t.delivery_order().begin(), t.delivery_order().end()};
}

/// Expected frontiers straight from the ground-truth oracle.
CausalFrontiers oracle_frontiers(const Trace& t, const CausalityOracle& oracle,
                                 EventId e) {
  return compute_frontiers_with(
      t.process_count(), e,
      [&](EventId a, EventId b) { return oracle.happened_before(a, b); },
      [&](ProcessId q) { return t.process_size(q); });
}

TEST(QueryBroker, PrecedenceAnswersMatchOracle) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  ThreadPool pool(4);
  BrokerOptions options;
  options.max_queue = 0;  // the sweep outpaces the workers; never shed
  QueryBroker broker(monitor, pool, options);

  Prng rng(7);
  std::vector<std::pair<EventId, EventId>> pairs;
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 200; ++i) {
    const EventId e = rng.pick(events);
    const EventId f = rng.pick(events);
    pairs.emplace_back(e, f);
    futures.push_back(broker.submit_precedence(e, f));
  }
  broker.drain();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const QueryResult r = futures[i].get();
    ASSERT_EQ(r.outcome, QueryOutcome::kAnswered);
    ASSERT_TRUE(r.answer.has_value());
    EXPECT_EQ(*r.answer,
              oracle.happened_before(pairs[i].first, pairs[i].second))
        << pairs[i].first << " vs " << pairs[i].second;
  }
  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.submitted, futures.size());
  EXPECT_EQ(h.in_flight, 0u);
}

TEST(QueryBroker, FrontierAndBatchMatchOracle) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  ThreadPool pool(2);
  QueryBroker broker(monitor, pool);

  Prng rng(13);
  const EventId probe = rng.pick(events);
  auto frontier_future = broker.submit_frontier(probe);

  std::vector<std::pair<EventId, EventId>> batch;
  for (int i = 0; i < 16; ++i) {
    batch.emplace_back(rng.pick(events), rng.pick(events));
  }
  auto batch_future = broker.submit_batch(batch);
  broker.drain();

  const QueryResult fr = frontier_future.get();
  ASSERT_EQ(fr.outcome, QueryOutcome::kAnswered);
  ASSERT_TRUE(fr.frontiers.has_value());
  const CausalFrontiers expected = oracle_frontiers(t, oracle, probe);
  EXPECT_EQ(fr.frontiers->greatest_predecessor, expected.greatest_predecessor);
  EXPECT_EQ(fr.frontiers->greatest_concurrent, expected.greatest_concurrent);

  const QueryResult br = batch_future.get();
  ASSERT_EQ(br.outcome, QueryOutcome::kAnswered);
  ASSERT_EQ(br.batch.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(br.batch[i].has_value());
    EXPECT_EQ(*br.batch[i],
              oracle.happened_before(batch[i].first, batch[i].second));
  }
}

TEST(QueryBroker, DeadlineExpiryIsDeterministic) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  ThreadPool pool(1);
  BrokerOptions options;
  options.answer_cache_capacity = 0;  // keep repeat costs identical
  QueryBroker broker(monitor, pool, options);

  // Find a pair whose exact answer needs several work ticks (pairs whose
  // target covers the source's process can resolve in one comparison).
  const auto events = all_events(t);
  EventId e = kNoEvent, f = kNoEvent;
  std::uint64_t full_cost = 0;
  Prng rng(3);
  for (int i = 0; i < 200 && full_cost < 3; ++i) {
    const EventId a = rng.pick(events);
    const EventId b = rng.pick(events);
    const QueryResult r = broker.submit_precedence(a, b, 0).get();
    ASSERT_EQ(r.outcome, QueryOutcome::kAnswered);
    if (r.cost >= 3) {
      e = a;
      f = b;
      full_cost = r.cost;
    }
  }
  ASSERT_GE(full_cost, 3u);

  // A one-tick budget cannot finish it.
  const QueryResult starved = broker.submit_precedence(e, f, 1).get();
  EXPECT_EQ(starved.outcome, QueryOutcome::kDeadlineExpired);
  EXPECT_FALSE(starved.answer.has_value());
  EXPECT_GT(starved.cost, 1u);

  // The metered cost is reproducible tick for tick.
  const QueryResult again = broker.submit_precedence(e, f, 0).get();
  ASSERT_EQ(again.outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(again.backend_used, ServingBackend::kCluster);
  EXPECT_EQ(again.cost, full_cost);

  // A budget at exactly the measured cost answers; one tick less expires.
  const QueryResult exact = broker.submit_precedence(e, f, full_cost).get();
  EXPECT_EQ(exact.outcome, QueryOutcome::kAnswered);
  const QueryResult minus =
      broker.submit_precedence(e, f, full_cost - 1).get();
  EXPECT_EQ(minus.outcome, QueryOutcome::kDeadlineExpired);
  EXPECT_TRUE(broker.health().accounted());
}

TEST(QueryBroker, BatchAnswersPrefixUnderSharedBudget) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  ThreadPool pool(1);
  BrokerOptions options;
  options.answer_cache_capacity = 0;
  QueryBroker broker(monitor, pool, options);

  std::vector<std::pair<EventId, EventId>> pairs(
      8, {EventId{0, 1}, EventId{1, 2}});
  const std::uint64_t per_pair =
      broker.submit_precedence(EventId{0, 1}, EventId{1, 2}, 0).get().cost;

  // Budget for roughly three pairs: a prefix answers, the rest do not.
  const QueryResult r =
      broker.submit_batch(pairs, per_pair * 3).get();
  EXPECT_EQ(r.outcome, QueryOutcome::kDeadlineExpired);
  ASSERT_EQ(r.batch.size(), pairs.size());
  EXPECT_TRUE(r.batch.front().has_value());
  EXPECT_FALSE(r.batch.back().has_value());
}

/// Blocks the (single-threaded) pool so admissions queue deterministically.
class PoolGate {
 public:
  explicit PoolGate(ThreadPool& pool) {
    std::shared_future<void> released = gate_.get_future().share();
    pool.submit([released] { released.wait(); });
  }
  void open() { gate_.set_value(); }

 private:
  std::promise<void> gate_;
};

TEST(QueryBroker, AdmissionShedsNewestWhenConfigured) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  ThreadPool pool(1);
  BrokerOptions options;
  options.max_queue = 2;
  options.shed_policy = ShedPolicy::kRejectNewest;
  QueryBroker broker(monitor, pool, options);

  PoolGate gate(pool);
  auto f1 = broker.submit_precedence(EventId{0, 1}, EventId{1, 1});
  auto f2 = broker.submit_precedence(EventId{0, 1}, EventId{1, 2});
  auto f3 = broker.submit_precedence(EventId{0, 1}, EventId{1, 3});

  // The overflowing (newest) query is bounced synchronously.
  ASSERT_EQ(f3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(f3.get().outcome, QueryOutcome::kShed);

  gate.open();
  broker.drain();
  EXPECT_EQ(f1.get().outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(f2.get().outcome, QueryOutcome::kAnswered);

  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.submitted, 3u);
  EXPECT_EQ(h.shed, 1u);
  EXPECT_EQ(h.in_flight, 0u);
  EXPECT_EQ(h.max_queue_depth, 2u);
}

TEST(QueryBroker, AdmissionShedsOldestWhenConfigured) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  ThreadPool pool(1);
  BrokerOptions options;
  options.max_queue = 2;
  options.shed_policy = ShedPolicy::kRejectOldest;
  QueryBroker broker(monitor, pool, options);

  PoolGate gate(pool);
  auto f1 = broker.submit_precedence(EventId{0, 1}, EventId{1, 1});
  auto f2 = broker.submit_precedence(EventId{0, 1}, EventId{1, 2});
  auto f3 = broker.submit_precedence(EventId{0, 1}, EventId{1, 3});

  // The queue head (oldest) is bounced; the incoming query takes its slot.
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(f1.get().outcome, QueryOutcome::kShed);

  gate.open();
  broker.drain();
  EXPECT_EQ(f2.get().outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(f3.get().outcome, QueryOutcome::kAnswered);

  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.submitted, 3u);
  EXPECT_EQ(h.shed, 1u);
  EXPECT_EQ(h.in_flight, 0u);
}

TEST(QueryBroker, RejectOldestBoundaryIsExactAtCapacity) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  ThreadPool pool(1);
  BrokerOptions options;
  options.max_queue = 2;
  options.shed_policy = ShedPolicy::kRejectOldest;
  QueryBroker broker(monitor, pool, options);

  PoolGate gate(pool);
  // Exactly AT capacity: both admitted, nothing shed, nothing resolved.
  auto f1 = broker.submit_precedence(EventId{0, 1}, EventId{1, 1});
  auto f2 = broker.submit_precedence(EventId{0, 1}, EventId{1, 2});
  EXPECT_EQ(f1.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  EXPECT_EQ(f2.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  {
    const BrokerHealth h = broker.health();
    EXPECT_EQ(h.submitted, 2u);
    EXPECT_EQ(h.shed, 0u);
    EXPECT_EQ(h.in_flight, 2u);
    EXPECT_EQ(h.max_queue_depth, 2u);
  }

  // Capacity + 1: exactly the head is bounced, synchronously; the queue
  // depth never exceeds capacity.
  auto f3 = broker.submit_precedence(EventId{0, 1}, EventId{1, 3});
  ASSERT_EQ(f1.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(f1.get().outcome, QueryOutcome::kShed);
  EXPECT_EQ(f2.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);

  // Capacity + 2: the bounce is FIFO — the next-oldest survivor goes.
  auto f4 = broker.submit_precedence(EventId{0, 1}, EventId{1, 4});
  ASSERT_EQ(f2.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(f2.get().outcome, QueryOutcome::kShed);

  gate.open();
  broker.drain();
  EXPECT_EQ(f3.get().outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(f4.get().outcome, QueryOutcome::kAnswered);

  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.submitted, 4u);
  EXPECT_EQ(h.shed, 2u);
  EXPECT_EQ(h.answered, 2u);
  EXPECT_EQ(h.in_flight, 0u);
  EXPECT_EQ(h.max_queue_depth, 2u);
}

TEST(QueryBroker, AnswerCacheServesRepeats) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  ThreadPool pool(1);
  QueryBroker broker(monitor, pool);

  const QueryResult first =
      broker.submit_precedence(EventId{0, 2}, EventId{1, 3}).get();
  const QueryResult repeat =
      broker.submit_precedence(EventId{0, 2}, EventId{1, 3}).get();
  ASSERT_EQ(first.outcome, QueryOutcome::kAnswered);
  ASSERT_EQ(repeat.outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(first.backend_used, ServingBackend::kCluster);
  EXPECT_EQ(repeat.backend_used, ServingBackend::kCache);
  EXPECT_EQ(*first.answer, *repeat.answer);
  EXPECT_LT(repeat.cost, first.cost);
  EXPECT_GE(broker.health().cache_hits, 1u);
}

TEST(QueryBroker, FallbackChainDegradesAndStaysExact) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  const CausalityOracle oracle(t);
  ThreadPool pool(1);
  BrokerOptions options;
  options.answer_cache_capacity = 0;  // force every query through the chain
  options.breaker_probe_stride = 0;   // no self-healing probes in this test
  QueryBroker broker(monitor, pool, options);

  const EventId e{0, 3};
  const EventId f{1, 4};
  const bool expected = oracle.happened_before(e, f);

  broker.trip_backend(ServingBackend::kCluster);
  const QueryResult via_diff = broker.submit_precedence(e, f).get();
  ASSERT_EQ(via_diff.outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(via_diff.backend_used, ServingBackend::kDifferential);
  EXPECT_EQ(*via_diff.answer, expected);

  broker.trip_backend(ServingBackend::kDifferential);
  const QueryResult via_fm = broker.submit_precedence(e, f).get();
  ASSERT_EQ(via_fm.outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(via_fm.backend_used, ServingBackend::kOnDemandFm);
  EXPECT_EQ(*via_fm.answer, expected);

  // Every backend open: the broker says "unknown", never guesses.
  broker.trip_backend(ServingBackend::kOnDemandFm);
  const QueryResult unknown = broker.submit_precedence(e, f).get();
  EXPECT_EQ(unknown.outcome, QueryOutcome::kUnknown);
  EXPECT_FALSE(unknown.answer.has_value());
  EXPECT_EQ(unknown.backend_used, ServingBackend::kNone);

  broker.readmit_backend(ServingBackend::kCluster);
  const QueryResult healed = broker.submit_precedence(e, f).get();
  ASSERT_EQ(healed.outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(healed.backend_used, ServingBackend::kCluster);

  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.unknown, 1u);
  EXPECT_GE(h.fallback_answers, 2u);
  EXPECT_EQ(h.breaker_trips, 3u);
}

TEST(QueryBroker, OpenFallbackBreakerHealsViaProbe) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  ThreadPool pool(1);
  BrokerOptions options;
  options.answer_cache_capacity = 0;
  options.breaker_probe_stride = 2;  // every 2nd bypass probes
  QueryBroker broker(monitor, pool, options);

  broker.trip_backend(ServingBackend::kCluster);
  broker.trip_backend(ServingBackend::kDifferential);

  // First query bypasses the open differential breaker (served on-demand);
  // the second probes it, succeeds, and closes the breaker.
  const QueryResult q1 =
      broker.submit_precedence(EventId{0, 1}, EventId{1, 1}).get();
  EXPECT_EQ(q1.backend_used, ServingBackend::kOnDemandFm);
  const QueryResult q2 =
      broker.submit_precedence(EventId{0, 2}, EventId{1, 2}).get();
  EXPECT_EQ(q2.backend_used, ServingBackend::kDifferential);
  EXPECT_FALSE(broker.backend_open(ServingBackend::kDifferential));
  // The audited cluster backend never self-heals via probes.
  EXPECT_TRUE(broker.backend_open(ServingBackend::kCluster));
  EXPECT_GE(broker.health().readmissions, 1u);
}

TEST(QueryBroker, UnknownEventsFailWithoutFeedingBreakers) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  ThreadPool pool(1);
  QueryBroker broker(monitor, pool);

  const QueryResult r =
      broker.submit_precedence(EventId{0, 1}, EventId{99, 1}).get();
  EXPECT_EQ(r.outcome, QueryOutcome::kFailed);
  EXPECT_FALSE(broker.backend_open(ServingBackend::kCluster));

  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.failed, 1u);
  EXPECT_EQ(h.breaker_trips, 0u);
}

// The acceptance-criterion scenario: inject cluster-state corruption, let the
// audit detect and localize it, verify the broker never serves a wrong
// precedence answer while degraded, then verify full recovery.
TEST(QueryBroker, CorruptionAuditRepairReadmitEndToEnd) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  ThreadPool pool(2);
  BrokerOptions options;
  options.max_queue = 0;  // sweeps must not shed
  options.audit.pairs_per_step = 8;
  options.audit.clean_steps_to_readmit = 2;
  QueryBroker broker(monitor, pool, options);

  const auto sweep_matches_oracle = [&](ServingBackend forbidden) {
    std::vector<std::pair<EventId, EventId>> pairs;
    std::vector<std::future<QueryResult>> futures;
    Prng rng(23);
    for (int i = 0; i < 150; ++i) {
      const EventId e = rng.pick(events);
      const EventId f = rng.pick(events);
      pairs.emplace_back(e, f);
      futures.push_back(broker.submit_precedence(e, f));
    }
    broker.drain();
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const QueryResult r = futures[i].get();
      EXPECT_EQ(r.outcome, QueryOutcome::kAnswered);
      if (!r.answer) continue;
      EXPECT_NE(r.backend_used, forbidden);
      EXPECT_EQ(*r.answer,
                oracle.happened_before(pairs[i].first, pairs[i].second))
          << pairs[i].first << " vs " << pairs[i].second << " via "
          << to_string(r.backend_used);
    }
  };

  // Healthy sweep: served by the cluster backend, matches the oracle.
  sweep_matches_oracle(ServingBackend::kNone);
  ASSERT_TRUE(broker.audit_step());

  // Corrupt a stored timestamp while the broker is quiesced. The digest
  // audit must detect it regardless of whether any sampled pair flips.
  broker.drain();
  monitor.inject_timestamp_corruption(EventId{1, 2}, 0, 0xdeadu);
  EXPECT_FALSE(broker.audit_step());  // detect + trip + rebuild, one step
  EXPECT_TRUE(broker.backend_open(ServingBackend::kCluster));

  BrokerHealth h = broker.health();
  EXPECT_GE(h.audit_mismatches, 1u);
  EXPECT_GE(h.breaker_trips, 1u);
  EXPECT_EQ(h.rebuilds, 1u);
  EXPECT_GT(h.rebuild_ticks, 0u);
  const AuditStats stats = broker.audit_stats();
  EXPECT_GE(stats.digest_mismatches, 1u);

  // Degraded sweep: the tripped cluster backend is never consulted; every
  // answer comes from an exact fallback and matches the oracle.
  sweep_matches_oracle(ServingBackend::kCluster);

  // Clean audit steps re-admit the repaired backend.
  EXPECT_TRUE(broker.audit_step());
  EXPECT_TRUE(broker.backend_open(ServingBackend::kCluster));
  EXPECT_TRUE(broker.audit_step());
  EXPECT_FALSE(broker.backend_open(ServingBackend::kCluster));
  EXPECT_GE(broker.health().readmissions, 1u);

  // Recovered sweep: cluster serving again (cache may still short-circuit),
  // all answers exact.
  const QueryResult again =
      broker.submit_precedence(EventId{2, 1}, EventId{3, 1}, 0).get();
  ASSERT_EQ(again.outcome, QueryOutcome::kAnswered);
  sweep_matches_oracle(ServingBackend::kNone);
  EXPECT_TRUE(broker.health().accounted());
}

// Concurrent mixed load with stride audits and a mid-stream corruption;
// the primary TSan target: queries hold the cluster lock shared while
// audit-triggered rebuilds take it exclusively.
TEST(QueryBroker, ConcurrentLoadWithAuditAndRepairStaysAccounted) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  ThreadPool pool(4);
  BrokerOptions options;
  options.audit_stride = 8;
  options.audit.pairs_per_step = 2;
  options.audit.clean_steps_to_readmit = 2;
  QueryBroker broker(monitor, pool, options);

  Prng rng(99);
  std::vector<std::future<QueryResult>> futures;
  std::vector<std::pair<EventId, EventId>> pairs;
  const auto submit_some = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const EventId e = rng.pick(events);
      const EventId f = rng.pick(events);
      if (i % 17 == 0) {
        futures.push_back(broker.submit_frontier(e));
        pairs.emplace_back(kNoEvent, kNoEvent);
      } else {
        // A few starved deadlines mixed in.
        const std::uint64_t deadline = (i % 23 == 0) ? 1 : 0;
        futures.push_back(broker.submit_precedence(e, f, deadline));
        pairs.emplace_back(e, f);
      }
    }
  };

  submit_some(80);
  broker.drain();

  // Corrupt while quiesced, and immediately stop serving from the cluster
  // backend (operational kill switch); stride audits detect the digest
  // mismatch, repair, and eventually re-admit — all under load.
  monitor.inject_timestamp_corruption(EventId{0, 3}, 1, 0xbeefu);
  broker.trip_backend(ServingBackend::kCluster);
  submit_some(120);
  broker.drain();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const QueryResult r = futures[i].get();
    if (r.answer) {
      EXPECT_EQ(*r.answer,
                oracle.happened_before(pairs[i].first, pairs[i].second));
    }
    if (r.frontiers) {
      // Frontier answers must be exact whichever backends served them.
      const EventId probe = r.frontiers->greatest_predecessor.empty()
                                ? kNoEvent
                                : pairs[i].first;
      (void)probe;
    }
  }
  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.submitted, futures.size());
  EXPECT_EQ(h.in_flight, 0u);
  EXPECT_GE(h.audit_steps, 1u);
  EXPECT_GE(h.rebuilds, 1u);
  EXPECT_GT(h.deadline_expired, 0u);
  // Post-repair, the state digest audit is clean again.
  EXPECT_TRUE(broker.audit_step());
}

TEST(QueryBroker, ServesFmBackedMonitorWithoutAudit) {
  const Trace t = small_trace();
  MonitoringEntity monitor(
      t.process_count(),
      broker_monitor_options(t, TimestampBackend::kPrecomputedFm));
  feed(monitor, t);
  const CausalityOracle oracle(t);

  ThreadPool pool(2);
  QueryBroker broker(monitor, pool);

  const QueryResult r =
      broker.submit_precedence(EventId{0, 1}, EventId{1, 2}).get();
  ASSERT_EQ(r.outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(*r.answer, oracle.happened_before(EventId{0, 1}, EventId{1, 2}));
  // No cluster state to audit: steps are trivially clean.
  EXPECT_TRUE(broker.audit_step());
  EXPECT_TRUE(broker.health().accounted());
}

// ------------------------------------------------ shedding edge cases

TEST(QueryBroker, QueueExactlyFullIsAdmittedAcrossPoliciesAndCapacities) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);

  struct Row {
    ShedPolicy policy;
    std::size_t capacity;
  };
  const Row rows[] = {
      {ShedPolicy::kRejectNewest, 1}, {ShedPolicy::kRejectNewest, 2},
      {ShedPolicy::kRejectNewest, 4}, {ShedPolicy::kRejectOldest, 1},
      {ShedPolicy::kRejectOldest, 2}, {ShedPolicy::kRejectOldest, 4},
  };
  for (const Row& row : rows) {
    SCOPED_TRACE(std::string("policy ") +
                 (row.policy == ShedPolicy::kRejectNewest ? "newest"
                                                          : "oldest") +
                 " capacity " + std::to_string(row.capacity));
    ThreadPool pool(1);
    BrokerOptions options;
    options.max_queue = row.capacity;
    options.shed_policy = row.policy;
    QueryBroker broker(monitor, pool, options);

    // Fill the queue to EXACTLY its capacity: no query may shed at the
    // boundary itself.
    PoolGate gate(pool);
    std::vector<std::future<QueryResult>> fill;
    for (std::size_t i = 0; i < row.capacity; ++i) {
      fill.push_back(broker.submit_precedence(
          EventId{0, 1}, EventId{1, static_cast<EventIndex>(i + 1)}));
    }
    EXPECT_EQ(broker.health().shed, 0u);
    EXPECT_EQ(broker.health().max_queue_depth, row.capacity);

    // One past capacity sheds exactly one query — which one depends on the
    // policy; every admitted query still resolves exactly.
    auto extra = broker.submit_precedence(EventId{0, 1}, EventId{2, 1});
    EXPECT_EQ(broker.health().shed, 1u);
    gate.open();
    broker.drain();

    std::vector<QueryOutcome> outcomes;
    for (auto& f : fill) outcomes.push_back(f.get().outcome);
    const QueryOutcome extra_outcome = extra.get().outcome;
    outcomes.push_back(extra_outcome);
    const auto count = [&](QueryOutcome o) {
      return static_cast<std::size_t>(
          std::count(outcomes.begin(), outcomes.end(), o));
    };
    EXPECT_EQ(count(QueryOutcome::kShed), 1u);
    EXPECT_EQ(count(QueryOutcome::kAnswered), row.capacity);
    if (row.policy == ShedPolicy::kRejectNewest) {
      EXPECT_EQ(extra_outcome, QueryOutcome::kShed);
    } else {
      EXPECT_EQ(outcomes.front(), QueryOutcome::kShed);
      EXPECT_EQ(extra_outcome, QueryOutcome::kAnswered);
    }
    const BrokerHealth h = broker.health();
    EXPECT_TRUE(h.accounted());
    EXPECT_EQ(h.submitted, row.capacity + 1);
    EXPECT_EQ(h.in_flight, 0u);
  }
}

TEST(QueryBroker, DeadlineCanExpireMidFallbackDescent) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);

  ThreadPool pool(1);
  BrokerOptions options;
  options.answer_cache_capacity = 0;  // no cache short-circuit
  QueryBroker broker(monitor, pool, options);
  // Force the chain past its primary: every query starts its descent at the
  // differential store.
  broker.trip_backend(ServingBackend::kCluster);

  // A one-tick budget cannot finish even a single component comparison in
  // the differential backend: the query dies mid-descent, after the breaker
  // bypass but before any fallback can answer.
  const QueryResult starved =
      broker.submit_precedence(EventId{0, 1}, EventId{1, 3}, 1).get();
  EXPECT_EQ(starved.outcome, QueryOutcome::kDeadlineExpired);
  EXPECT_FALSE(starved.answer.has_value());

  // The same query unbudgeted descends to an exact fallback answer.
  const CausalityOracle oracle(t);
  const QueryResult served =
      broker.submit_precedence(EventId{0, 1}, EventId{1, 3}).get();
  EXPECT_EQ(served.outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(served.backend_used, ServingBackend::kDifferential);
  EXPECT_EQ(*served.answer,
            oracle.happened_before(EventId{0, 1}, EventId{1, 3}));

  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.deadline_expired, 1u);
  EXPECT_GE(h.fallback_answers, 1u);
}

TEST(QueryBroker, FallbackBreakerReclosesViaProbeStride) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);

  ThreadPool pool(1);
  BrokerOptions options;
  options.answer_cache_capacity = 0;
  options.breaker_probe_stride = 4;
  QueryBroker broker(monitor, pool, options);
  // Cluster AND differential tripped: queries bypass both and answer at the
  // on-demand FM tail until the differential breaker's probe fires.
  broker.trip_backend(ServingBackend::kCluster);
  broker.trip_backend(ServingBackend::kDifferential);

  // Bypasses 1..3: no probe yet, the tail serves.
  for (int i = 1; i <= 3; ++i) {
    const QueryResult r =
        broker.submit_precedence(EventId{0, 1},
                                 EventId{1, static_cast<EventIndex>(i)})
            .get();
    ASSERT_EQ(r.outcome, QueryOutcome::kAnswered);
    EXPECT_EQ(r.backend_used, ServingBackend::kOnDemandFm) << "query " << i;
    EXPECT_TRUE(broker.backend_open(ServingBackend::kDifferential));
  }
  // Bypass 4 probes the healthy differential store: the probe answers the
  // query AND re-closes the breaker.
  const QueryResult probe =
      broker.submit_precedence(EventId{0, 1}, EventId{2, 1}).get();
  ASSERT_EQ(probe.outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(probe.backend_used, ServingBackend::kDifferential);
  EXPECT_FALSE(broker.backend_open(ServingBackend::kDifferential));
  EXPECT_EQ(broker.health().readmissions, 1u);

  // The audited cluster backend never re-closes by probe — only clean audit
  // steps (or an explicit readmit) bring the primary back.
  EXPECT_TRUE(broker.backend_open(ServingBackend::kCluster));
  const QueryResult after =
      broker.submit_precedence(EventId{0, 1}, EventId{2, 2}).get();
  EXPECT_EQ(after.backend_used, ServingBackend::kDifferential);
  broker.readmit_backend(ServingBackend::kCluster);
  EXPECT_FALSE(broker.backend_open(ServingBackend::kCluster));
  const QueryResult healed =
      broker.submit_precedence(EventId{0, 1}, EventId{2, 3}).get();
  EXPECT_EQ(healed.backend_used, ServingBackend::kCluster);
  EXPECT_TRUE(broker.health().accounted());
}

// ----------------------------------------------------- epoch publication

// Rebuild-storm stress tests for the lock-free read path: queries race
// continuous snapshot publication (rebuild_cluster clones the arena, swaps
// one atomic pointer, retires the old snapshot to the global epoch domain).
// Under TSan these are the data-race check on the whole pin/publish/retire
// protocol; on any build they check that rebuilds never block, tear, or
// change answers.

TEST(EpochPublication, BrokerAnswersStayExactDuringRebuildStorm) {
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  ASSERT_TRUE(monitor.lock_free_reads());
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  ThreadPool pool(3);
  QueryBroker broker(monitor, pool, {});

  // Rebuild every cluster in a loop: the rows recompute to their current
  // (correct) values, so every published snapshot answers identically and
  // reader exactness is assertable throughout the storm.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rebuilds{0};
  std::thread storm([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const ClusterId c : monitor.cluster_ids()) {
        monitor.rebuild_cluster(c);
        rebuilds.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  struct Submitted {
    EventId e = kNoEvent, f = kNoEvent;           // precedence
    std::vector<std::pair<EventId, EventId>> batch;  // batch
    bool frontier = false;
  };
  Prng rng(137);
  std::vector<std::future<QueryResult>> futures;
  std::vector<Submitted> submitted;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 30; ++i) {
      Submitted s;
      if (i % 11 == 0) {
        s.e = rng.pick(events);
        s.frontier = true;
        futures.push_back(broker.submit_frontier(s.e));
      } else if (i % 7 == 0) {
        for (int k = 0; k < 12; ++k) {
          s.batch.emplace_back(rng.pick(events), rng.pick(events));
        }
        futures.push_back(broker.submit_batch(s.batch));
      } else {
        s.e = rng.pick(events);
        s.f = rng.pick(events);
        futures.push_back(broker.submit_precedence(s.e, s.f));
      }
      submitted.push_back(std::move(s));
    }
    broker.drain();
  }
  stop.store(true);
  storm.join();

  ASSERT_GT(rebuilds.load(), 0u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const QueryResult r = futures[i].get();
    ASSERT_EQ(r.outcome, QueryOutcome::kAnswered) << "query " << i;
    const Submitted& s = submitted[i];
    if (s.frontier) {
      ASSERT_TRUE(r.frontiers.has_value());
      const CausalFrontiers want = oracle_frontiers(t, oracle, s.e);
      EXPECT_EQ(r.frontiers->greatest_predecessor,
                want.greatest_predecessor)
          << "frontier of " << s.e;
      EXPECT_EQ(r.frontiers->greatest_concurrent, want.greatest_concurrent)
          << "frontier of " << s.e;
    } else if (!s.batch.empty()) {
      ASSERT_EQ(r.batch.size(), s.batch.size());
      for (std::size_t k = 0; k < s.batch.size(); ++k) {
        ASSERT_TRUE(r.batch[k].has_value());
        EXPECT_EQ(*r.batch[k], oracle.happened_before(s.batch[k].first,
                                                      s.batch[k].second))
            << "batch " << i << " pair " << k;
      }
    } else {
      ASSERT_TRUE(r.answer.has_value());
      EXPECT_EQ(*r.answer, oracle.happened_before(s.e, s.f))
          << s.e << " -> " << s.f;
    }
  }
  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.in_flight, 0u);
}

TEST(EpochPublication, CorruptionRepairStormStaysAccounted) {
  // The harder storm: corruption injections and audit-triggered repairs
  // (both clone-mutate-publish writers, serialized by the engine) race the
  // reader traffic. Answers during a corruption window are unspecified —
  // this asserts the concurrency contract (no race, no stall, accounting
  // exact) and that the system converges to clean, exact service after.
  const Trace t = small_trace();
  MonitoringEntity monitor(t.process_count(), broker_monitor_options(t));
  feed(monitor, t);
  ASSERT_TRUE(monitor.lock_free_reads());
  const CausalityOracle oracle(t);
  const auto events = all_events(t);

  ThreadPool pool(3);
  BrokerOptions options;
  options.audit.pairs_per_step = 2;
  options.audit.clean_steps_to_readmit = 1;
  QueryBroker broker(monitor, pool, options);

  std::atomic<bool> stop{false};
  std::thread storm([&] {
    Prng corrupt_rng(138);
    while (!stop.load(std::memory_order_relaxed)) {
      monitor.inject_timestamp_corruption(corrupt_rng.pick(events), 0,
                                          0xdeadu);
      // audit_step detects the digest mismatch and rebuilds the corrupted
      // cluster — a second clone-and-publish racing the readers.
      broker.audit_step();
    }
  });

  Prng rng(139);
  std::vector<std::future<QueryResult>> futures;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 30; ++i) {
      if (i % 9 == 0) {
        futures.push_back(broker.submit_frontier(rng.pick(events)));
      } else {
        futures.push_back(
            broker.submit_precedence(rng.pick(events), rng.pick(events)));
      }
    }
    broker.drain();
  }
  stop.store(true);
  storm.join();

  for (auto& f : futures) {
    const QueryResult r = f.get();
    EXPECT_NE(r.outcome, QueryOutcome::kFailed);
  }
  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.in_flight, 0u);

  // Quiesced: one final repair pass, then service is exact again.
  while (!broker.audit_step()) {
  }
  for (int i = 0; i < 20; ++i) {
    const EventId e = rng.pick(events);
    const EventId f = rng.pick(events);
    const QueryResult r = broker.submit_precedence(e, f).get();
    ASSERT_EQ(r.outcome, QueryOutcome::kAnswered);
    EXPECT_EQ(*r.answer, oracle.happened_before(e, f)) << e << " -> " << f;
  }
}

TEST(EpochPublication, EngineCursorAndBatchReadsRaceRebuilds) {
  // Engine-level storm, below the broker: cursors pin the epoch domain for
  // their lifetime, raw batch calls pin around each call, and the writer
  // republishes snapshots continuously. Expected answers are computed
  // before the storm; every snapshot must serve them bit-identically.
  const Trace t = small_trace();
  ClusterEngineConfig config;
  config.max_cluster_size = 4;
  config.fm_vector_width = t.process_count();
  config.use_arena = true;
  ClusterTimestampEngine engine(t.process_count(), config,
                                make_merge_on_nth(10.0));
  for (const EventId id : t.delivery_order()) engine.observe(t.event(id));

  const auto& order = t.delivery_order();
  std::vector<const Event*> all;
  for (const EventId id : order) all.push_back(&t.event(id));

  std::vector<std::pair<const Event*, const Event*>> pairs;
  for (std::size_t i = 0; i < all.size(); i += 5) {
    for (std::size_t j = 0; j < all.size(); j += 7) {
      pairs.emplace_back(all[i], all[j]);
    }
  }
  std::vector<std::optional<bool>> expected(pairs.size());
  {
    QueryCost cost;
    ASSERT_EQ(engine.precedes_batch_metered(pairs, cost, expected.data()),
              pairs.size());
  }
  std::vector<std::uint8_t> expected_fwd(all.size());
  const Event& anchor = t.event(order[order.size() / 2]);
  engine.cursor(anchor).anchor_precedes_batch(all, expected_fwd.data());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int w = 0; w < 3; ++w) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Raw engine reads hold an explicit pin (the broker does this for
        // its callers); the cursor pins itself for its whole lifetime.
        {
          const util::EpochDomain::Guard pin =
              util::EpochDomain::global().pin();
          QueryCost cost;
          std::vector<std::optional<bool>> got(pairs.size());
          ASSERT_EQ(engine.precedes_batch_metered(pairs, cost, got.data()),
                    pairs.size());
          ASSERT_EQ(got, expected);
        }
        const auto cursor = engine.cursor(anchor);
        std::vector<std::uint8_t> fwd(all.size());
        cursor.anchor_precedes_batch(all, fwd.data());
        ASSERT_EQ(fwd, expected_fwd);
      }
    });
  }

  const auto event_of = [&t](EventId id) -> const Event& {
    return t.event(id);
  };
  for (int sweep = 0; sweep < 40; ++sweep) {
    for (const ClusterId c : engine.clusters().clusters()) {
      engine.rebuild_cluster(c, order, event_of);
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  // With every reader gone, all retired snapshots are reclaimable.
  util::EpochDomain::global().synchronize();
  util::EpochDomain::global().collect();
  EXPECT_EQ(util::EpochDomain::global().limbo_size(), 0u);
}

}  // namespace
}  // namespace ct

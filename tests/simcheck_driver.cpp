// Deterministic simulation-checker driver.
//
// Sweep mode (default): expands --schedules seeds into randomized schedules
// (simcheck/generator.hpp), replays each against a rotating window of the
// full backend × strategy × maxCS × layout verification matrix
// (simcheck/oracle.hpp), and accounts coverage so every matrix cell is
// exercised across the sweep. On a divergence the schedule is
// delta-minimized (simcheck/shrink.hpp), saved as a standalone replay file
// under --out-dir, and the repro command line is printed; exit code 1.
//
// Replay mode (--replay=file.ctsim): loads one replay and checks it against
// the FULL matrix — the mode the checked-in regression corpus runs under.
//
//   simcheck_driver --seed=1 --schedules=500 --configs-per-schedule=6
//   simcheck_driver --budget=30            # stop after ~30 wall seconds
//   simcheck_driver --matrix=backend       # backend-axis slice only
//   simcheck_driver --replay=tests/simcheck_corpus/foo.ctsim
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "simcheck/generator.hpp"
#include "simcheck/oracle.hpp"
#include "simcheck/replay_io.hpp"
#include "simcheck/schedule.hpp"
#include "simcheck/shrink.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

using namespace ct;

int replay_one(const std::string& path, bool verbose) {
  const SimSchedule schedule = load_replay(path);
  const std::vector<OracleConfig> matrix = full_matrix();
  const SimReport report = run_schedule(schedule, matrix);
  if (verbose || !report.ok()) {
    std::printf("replay %s: %zu ops, %zu probes, %llu checks\n", path.c_str(),
                report.ops_run, report.probes,
                static_cast<unsigned long long>(report.checks));
  }
  if (!report.ok()) {
    const SimDivergence& d = *report.divergence;
    std::printf("DIVERGENCE at op %zu [%s]: %s (e=P%u.%u f=P%u.%u)\n",
                d.op_index, d.config.c_str(), d.detail.c_str(), d.e.process,
                d.e.index, d.f.process, d.f.index);
    return 1;
  }
  std::printf("replay %s: OK\n", path.c_str());
  return 0;
}

void print_divergence(const SimSchedule& schedule, const SimDivergence& d) {
  std::printf(
      "DIVERGENCE in %s (seed %llu, digest %016llx) at op %zu [%s]:\n  %s\n"
      "  pair e=P%u.%u f=P%u.%u\n",
      schedule.name.c_str(), static_cast<unsigned long long>(schedule.seed),
      static_cast<unsigned long long>(schedule.digest()), d.op_index,
      d.config.c_str(), d.detail.c_str(), d.e.process, d.e.index, d.f.process,
      d.f.index);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliArgs args(argc, argv);
    const bool verbose = args.get_bool_or("verbose", false);
    if (const auto replay = args.get("replay")) {
      return replay_one(*replay, verbose);
    }

    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int_or("seed", 1));
    const std::size_t schedules =
        static_cast<std::size_t>(args.get_int_or("schedules", 500));
    const std::size_t per_schedule =
        static_cast<std::size_t>(args.get_int_or("configs-per-schedule", 6));
    const double budget = args.get_double_or("budget", 0.0);
    const std::string out_dir =
        args.get_or("out-dir", "simcheck-replays");
    const std::string matrix_name = args.get_or("matrix", "full");
    CT_CHECK_MSG(matrix_name == "full" || matrix_name == "backend",
                 "--matrix must be 'full' or 'backend'");

    const std::vector<OracleConfig> matrix =
        matrix_name == "backend" ? backend_matrix() : full_matrix();
    std::vector<std::uint64_t> coverage(matrix.size(), 0);
    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&start] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };

    std::size_t ran = 0;
    std::uint64_t total_checks = 0, total_probes = 0;
    for (std::size_t i = 0; i < schedules; ++i) {
      if (budget > 0.0 && elapsed() > budget) break;
      const std::uint64_t schedule_seed = seed + i;
      const SimSchedule schedule = generate_schedule(schedule_seed);

      // Rotating config window: cell (i*per_schedule + j) mod matrix size,
      // so a full sweep visits every matrix cell many times over.
      std::vector<OracleConfig> window;
      window.reserve(per_schedule);
      for (std::size_t j = 0; j < per_schedule && j < matrix.size(); ++j) {
        const std::size_t cell = (i * per_schedule + j) % matrix.size();
        window.push_back(matrix[cell]);
        ++coverage[cell];
      }

      const SimReport report = run_schedule(schedule, window);
      ++ran;
      total_checks += report.checks;
      total_probes += report.probes;
      if (verbose) {
        std::printf("schedule %llu (%s): %zu ops, %zu probes, %llu checks\n",
                    static_cast<unsigned long long>(schedule_seed),
                    schedule.name.c_str(), report.ops_run, report.probes,
                    static_cast<unsigned long long>(report.checks));
      }
      if (report.ok()) continue;

      print_divergence(schedule, *report.divergence);
      std::printf("shrinking...\n");
      const ShrinkResult shrunk = shrink_schedule(
          schedule, [&window](const SimSchedule& candidate) {
            return !run_schedule(candidate, window).ok();
          });
      const SimReport confirm = run_schedule(shrunk.schedule, window);
      CT_CHECK_MSG(!confirm.ok(), "shrunk schedule no longer fails");
      print_divergence(shrunk.schedule, *confirm.divergence);
      std::printf("shrunk to %zu ops (%zu emits) in %zu attempts\n",
                  shrunk.schedule.ops.size(), shrunk.schedule.emit_count(),
                  shrunk.attempts);

      std::filesystem::create_directories(out_dir);
      const std::string path = out_dir + "/" + shrunk.schedule.name + ".ctsim";
      save_replay(path, shrunk.schedule);
      std::printf("replay saved: %s\nreproduce with: %s --replay=%s\n",
                  path.c_str(), args.program().c_str(), path.c_str());
      return 1;
    }

    std::uint64_t min_cov = ~0ull, max_cov = 0;
    std::size_t uncovered = 0;
    for (const std::uint64_t c : coverage) {
      min_cov = c < min_cov ? c : min_cov;
      max_cov = c > max_cov ? c : max_cov;
      uncovered += c == 0;
    }
    std::printf(
        "simcheck OK: %zu schedules, %llu probes, %llu checks, %.1fs\n"
        "matrix coverage: %zu configs, visits min=%llu max=%llu, "
        "uncovered=%zu\n",
        ran, static_cast<unsigned long long>(total_probes),
        static_cast<unsigned long long>(total_checks), elapsed(),
        matrix.size(), static_cast<unsigned long long>(min_cov),
        static_cast<unsigned long long>(max_cov), uncovered);
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "simcheck_driver: %s\n", ex.what());
    return 2;
  }
}

// Sharded-deployment answer-identity driver.
//
// Sweep mode (default): expands --schedules seeds into randomized schedules
// (simcheck/generator.hpp) and replays each through three sharded-vs-
// single-shard comparisons (shard/shard_check.hpp):
//
//   identity  — fault-free: answers must be bit-identical;
//   faults    — seeded shard faults: every answer still exact, every
//               non-exact path flagged degraded, the rest explicit unknown;
//   isolation — the same faults confined to tenant 0: sibling tenants must
//               answer exactly as a fault-free run (the bulkhead claim).
//
// On a divergence the schedule is delta-minimized (simcheck/shrink.hpp)
// against the failing mode, saved as a standalone .ctsim replay under
// --out-dir, and the repro command line is printed; exit code 1.
//
// Replay mode (--replay=file.ctsim): loads one replay and runs all three
// comparisons against it.
//
//   shard_driver --seed=1 --schedules=300
//   shard_driver --budget=30              # stop after ~30 wall seconds
//   shard_driver --replay=shard-replays/foo.ctsim
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "shard/shard_check.hpp"
#include "simcheck/generator.hpp"
#include "simcheck/replay_io.hpp"
#include "simcheck/schedule.hpp"
#include "simcheck/shrink.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

using namespace ct;

struct Mode {
  const char* name;
  ShardCheckOptions options;
};

std::vector<Mode> modes(std::uint64_t fault_seed, std::size_t shards,
                        std::size_t tenants) {
  ShardFaultPlan plan;
  plan.seed = fault_seed;
  plan.slow_rate = 0.15;
  plan.stall_rate = 0.12;
  plan.dead_rate = 0.12;
  plan.corrupt_rate = 0.10;

  Mode identity{"identity", {}};
  identity.options.shards = shards;
  identity.options.tenants = tenants;

  Mode faults{"faults", {}};
  faults.options.shards = shards;
  faults.options.tenants = 1;
  faults.options.faults = plan;

  Mode isolation{"isolation", {}};
  isolation.options.shards = shards;
  isolation.options.tenants = tenants < 2 ? 2 : tenants;
  isolation.options.faults = plan;
  isolation.options.fault_first_tenant_only = true;

  return {identity, faults, isolation};
}

void print_divergence(const SimSchedule& schedule, const char* mode,
                      const ShardDivergence& d) {
  std::printf(
      "DIVERGENCE in %s (seed %llu, digest %016llx) mode %s at op %zu "
      "tenant %u:\n  %s\n  pair e=P%u.%u f=P%u.%u\n",
      schedule.name.c_str(), static_cast<unsigned long long>(schedule.seed),
      static_cast<unsigned long long>(schedule.digest()), mode, d.op_index,
      d.tenant, d.detail.c_str(), d.e.process, d.e.index, d.f.process,
      d.f.index);
}

int replay_one(const std::string& path, std::size_t shards,
               std::size_t tenants, bool verbose) {
  const SimSchedule schedule = load_replay(path);
  int rc = 0;
  for (const Mode& mode : modes(schedule.seed, shards, tenants)) {
    const ShardCheckReport report = run_shard_check(schedule, mode.options);
    if (verbose || !report.ok()) {
      std::printf("replay %s [%s]: %zu ops, %zu probes, %llu pairs, "
                  "%llu degraded, %llu unknown\n",
                  path.c_str(), mode.name, report.ops_run, report.probes,
                  static_cast<unsigned long long>(report.pairs_checked),
                  static_cast<unsigned long long>(report.degraded_answers),
                  static_cast<unsigned long long>(report.unknown_answers));
    }
    if (!report.ok()) {
      print_divergence(schedule, mode.name, *report.divergence);
      rc = 1;
    }
  }
  if (rc == 0) std::printf("replay %s: OK\n", path.c_str());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliArgs args(argc, argv);
    const bool verbose = args.get_bool_or("verbose", false);
    const std::size_t shards =
        static_cast<std::size_t>(args.get_int_or("shards", 3));
    const std::size_t tenants =
        static_cast<std::size_t>(args.get_int_or("tenants", 2));
    if (const auto replay = args.get("replay")) {
      return replay_one(*replay, shards, tenants, verbose);
    }

    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int_or("seed", 1));
    const std::size_t schedules =
        static_cast<std::size_t>(args.get_int_or("schedules", 300));
    const double budget = args.get_double_or("budget", 0.0);
    const std::string out_dir = args.get_or("out-dir", "shard-replays");

    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&start] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start)
          .count();
    };

    std::size_t ran = 0;
    std::uint64_t total_pairs = 0, total_frontiers = 0, total_degraded = 0,
                  total_unknown = 0, total_faults = 0;
    for (std::size_t i = 0; i < schedules; ++i) {
      if (budget > 0.0 && elapsed() > budget) break;
      const std::uint64_t schedule_seed = seed + i;
      const SimSchedule schedule = generate_schedule(schedule_seed);

      for (const Mode& mode : modes(schedule_seed, shards, tenants)) {
        const ShardCheckReport report =
            run_shard_check(schedule, mode.options);
        total_pairs += report.pairs_checked;
        total_frontiers += report.frontiers_checked;
        total_degraded += report.degraded_answers;
        total_unknown += report.unknown_answers;
        total_faults += report.faults_injected;
        if (verbose) {
          std::printf(
              "schedule %llu (%s) [%s]: %zu probes, %llu pairs, "
              "%llu degraded\n",
              static_cast<unsigned long long>(schedule_seed),
              schedule.name.c_str(), mode.name, report.probes,
              static_cast<unsigned long long>(report.pairs_checked),
              static_cast<unsigned long long>(report.degraded_answers));
        }
        if (report.ok()) continue;

        print_divergence(schedule, mode.name, *report.divergence);
        std::printf("shrinking...\n");
        const ShardCheckOptions failing = mode.options;
        const ShrinkResult shrunk = shrink_schedule(
            schedule, [&failing](const SimSchedule& candidate) {
              return !run_shard_check(candidate, failing).ok();
            });
        const ShardCheckReport confirm =
            run_shard_check(shrunk.schedule, failing);
        CT_CHECK_MSG(!confirm.ok(), "shrunk schedule no longer fails");
        print_divergence(shrunk.schedule, mode.name, *confirm.divergence);
        std::printf("shrunk to %zu ops (%zu emits) in %zu attempts\n",
                    shrunk.schedule.ops.size(), shrunk.schedule.emit_count(),
                    shrunk.attempts);

        std::filesystem::create_directories(out_dir);
        const std::string path =
            out_dir + "/" + shrunk.schedule.name + ".ctsim";
        save_replay(path, shrunk.schedule);
        std::printf("replay saved: %s\nreproduce with: %s --replay=%s\n",
                    path.c_str(), args.program().c_str(), path.c_str());
        return 1;
      }
      ++ran;
    }

    std::printf(
        "shard check OK: %zu schedules x 3 modes, %llu pairs, %llu "
        "frontiers, %llu degraded, %llu unknown, %llu faults injected, "
        "%.1fs\n",
        ran, static_cast<unsigned long long>(total_pairs),
        static_cast<unsigned long long>(total_frontiers),
        static_cast<unsigned long long>(total_degraded),
        static_cast<unsigned long long>(total_unknown),
        static_cast<unsigned long long>(total_faults), elapsed());
    return 0;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "shard_driver: %s\n", ex.what());
    return 2;
  }
}

// Per-tenant WAL namespace isolation (docs/FAULT_MODEL.md §8, satellite of
// the shard router): many tenants share one StorageBackend under disjoint
// object-name namespaces, and recovery of one tenant must be byte-identical
// to a solo run no matter how thoroughly a sibling tenant's objects are
// damaged — for every damage shape in the §7 storage-fault taxonomy.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "durability/recovery.hpp"
#include "durability/storage.hpp"
#include "durability/wal.hpp"
#include "monitor/monitor.hpp"
#include "trace/generators.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

Trace tenant_trace(std::uint64_t seed) {
  return generate_rpc_business({.groups = 2,
                                .clients_per_group = 2,
                                .servers_per_group = 2,
                                .calls = 30,
                                .seed = seed});
}

MonitorOptions tenant_options(const Trace& t) {
  MonitorOptions options;
  options.cluster.max_cluster_size = 4;
  options.cluster.fm_vector_width = t.process_count();
  return options;
}

struct LoggedTenant {
  std::unique_ptr<MonitoringEntity> monitor;
  std::unique_ptr<DurableLog> log;
};

LoggedTenant start_tenant(StorageBackend& storage, const Trace& t,
                          const std::string& ns) {
  LoggedTenant out;
  out.monitor =
      std::make_unique<MonitoringEntity>(t.process_count(), tenant_options(t));
  WalOptions wo;
  wo.ns = ns;
  wo.segment_bytes = 512;  // several segments per tenant
  out.log = std::make_unique<DurableLog>(storage, wo);
  DurableLog* log = out.log.get();
  out.monitor->set_delivery_tap([log](const Event& e) { log->append(e); });
  return out;
}

/// Feeds both tenants' streams interleaved, so their segments interleave in
/// the shared journal too.
void feed_interleaved(LoggedTenant& a, const Trace& ta, LoggedTenant& b,
                      const Trace& tb) {
  const auto oa = ta.delivery_order();
  const auto ob = tb.delivery_order();
  const std::size_t n = oa.size() > ob.size() ? oa.size() : ob.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i < oa.size()) a.monitor->ingest(ta.event(oa[i]));
    if (i < ob.size()) b.monitor->ingest(tb.event(ob[i]));
  }
}

/// The damage shapes of the §7 taxonomy, applied DIRECTLY to one tenant's
/// objects (an adversarial sibling: any byte pattern, any object).
enum class Damage {
  kLostSuffix,    ///< object truncated at a byte chosen by seed
  kShortWrite,    ///< object truncated to a tiny prefix
  kTornWrite,     ///< truncated, then garbage bytes appended
  kBitRot,        ///< one bit flipped mid-object
  kStaleSegment,  ///< object vanishes wholesale
  kGarbageHeader, ///< magic overwritten — structurally unparseable
};

const Damage kAllDamage[] = {Damage::kLostSuffix,   Damage::kShortWrite,
                             Damage::kTornWrite,    Damage::kBitRot,
                             Damage::kStaleSegment, Damage::kGarbageHeader};

const char* to_string(Damage d) {
  switch (d) {
    case Damage::kLostSuffix: return "lost-suffix";
    case Damage::kShortWrite: return "short-write";
    case Damage::kTornWrite: return "torn-write";
    case Damage::kBitRot: return "bit-rot";
    case Damage::kStaleSegment: return "stale-segment";
    case Damage::kGarbageHeader: return "garbage-header";
  }
  return "?";
}

void damage_object(SimulatedStorage& storage, const std::string& name,
                   Damage damage, Prng& prng) {
  if (damage == Damage::kStaleSegment) {
    storage.remove(name);
    storage.sync_dir();
    return;
  }
  std::string bytes = storage.read(name);
  switch (damage) {
    case Damage::kLostSuffix:
      if (!bytes.empty()) bytes.resize(prng.index(bytes.size()) + 1);
      break;
    case Damage::kShortWrite:
      bytes.resize(bytes.size() < 7 ? bytes.size() : 7);
      break;
    case Damage::kTornWrite:
      if (!bytes.empty()) bytes.resize(prng.index(bytes.size()) + 1);
      bytes += "\x01\x7f\xff torn";
      break;
    case Damage::kBitRot:
      if (!bytes.empty()) {
        const std::size_t at = prng.index(bytes.size());
        bytes[at] = static_cast<char>(
            static_cast<unsigned char>(bytes[at]) ^
            (1u << prng.index(8)));
      }
      break;
    case Damage::kGarbageHeader:
      for (std::size_t i = 0; i < bytes.size() && i < 8; ++i) {
        bytes[i] = '\x5a';
      }
      break;
    case Damage::kStaleSegment:
      break;
  }
  storage.remove(name);
  storage.create(name);
  storage.append(name, bytes);
  storage.sync(name);
  storage.sync_dir();
}

/// Names owned by `ns` (segments and snapshots).
std::vector<std::string> tenant_objects(const StorageBackend& storage,
                                        const std::string& ns) {
  std::vector<std::string> out;
  for (const std::string& name : storage.list()) {
    if (wal::parse_segment_name(name, ns) ||
        wal::parse_snapshot_name(name, ns)) {
      out.push_back(name);
    }
  }
  return out;
}

struct Baseline {
  std::vector<EventId> delivery;
  std::uint64_t digest = 0;
};

/// What tenant B's recovery looks like with NO sibling on the storage.
Baseline solo_baseline(const Trace& tb, const std::string& ns) {
  SimulatedStorage storage;
  LoggedTenant b = start_tenant(storage, tb, ns);
  for (const EventId id : tb.delivery_order()) b.monitor->ingest(tb.event(id));
  b.log->checkpoint(*b.monitor);
  b.log->sync();
  const RecoveredMonitor rec =
      recover_monitor(storage, tb.process_count(), tenant_options(tb), ns);
  Baseline out;
  const auto log = rec.monitor->delivery_log();
  out.delivery.assign(log.begin(), log.end());
  out.digest = rec.monitor->state_digest();
  return out;
}

TEST(WalNamespace, GrammarPartitionsSharedStorage) {
  EXPECT_EQ(wal::tenant_namespace(7), "tenant-000007.");
  EXPECT_TRUE(wal::valid_namespace(""));
  EXPECT_TRUE(wal::valid_namespace("tenant-000001."));
  EXPECT_FALSE(wal::valid_namespace("a/b"));

  const std::string ns = wal::tenant_namespace(3);
  const std::string seg = wal::segment_object_name(12, ns);
  EXPECT_EQ(seg, "tenant-000003.wal-00000012.log");
  EXPECT_EQ(wal::parse_segment_name(seg, ns), 12u);
  // Another tenant's parser — and the legacy single-tenant parser — must
  // both refuse the name: that refusal IS the isolation mechanism.
  EXPECT_FALSE(wal::parse_segment_name(seg, wal::tenant_namespace(4)));
  EXPECT_FALSE(wal::parse_segment_name(seg, ""));
  // And a namespaced parser must refuse legacy names.
  EXPECT_FALSE(wal::parse_segment_name("wal-00000012.log", ns));
  EXPECT_EQ(wal::parse_segment_name("wal-00000012.log", ""), 12u);

  const std::string snap = wal::snapshot_object_name(99, ns);
  EXPECT_EQ(wal::parse_snapshot_name(snap, ns), 99u);
  EXPECT_FALSE(wal::parse_snapshot_name(snap, ""));
}

TEST(WalNamespace, SiblingRecoveryIsByteIdenticalUnderEveryDamageShape) {
  const Trace ta = tenant_trace(51);
  const Trace tb = tenant_trace(77);
  const std::string ns_a = wal::tenant_namespace(0);
  const std::string ns_b = wal::tenant_namespace(1);
  const Baseline solo = solo_baseline(tb, ns_b);
  ASSERT_FALSE(solo.delivery.empty());

  for (const Damage damage : kAllDamage) {
    SCOPED_TRACE(to_string(damage));
    SimulatedStorage storage;
    {
      LoggedTenant a = start_tenant(storage, ta, ns_a);
      LoggedTenant b = start_tenant(storage, tb, ns_b);
      feed_interleaved(a, ta, b, tb);
      a.log->checkpoint(*a.monitor);
      b.log->checkpoint(*b.monitor);
      a.log->sync();
      b.log->sync();
    }

    // Damage EVERY object tenant A owns — segments and snapshots alike.
    Prng prng(static_cast<std::uint64_t>(damage) + 1);
    const std::vector<std::string> victims = tenant_objects(storage, ns_a);
    ASSERT_FALSE(victims.empty());
    for (const std::string& name : victims) {
      damage_object(storage, name, damage, prng);
    }

    // Tenant B's recovery must not notice: same delivered log, same state
    // digest, no rejected snapshots, no truncation — byte-identical to the
    // solo run.
    const RecoveredMonitor rec =
        recover_monitor(storage, tb.process_count(), tenant_options(tb),
                        ns_b);
    const auto log = rec.monitor->delivery_log();
    ASSERT_EQ(log.size(), solo.delivery.size());
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i], solo.delivery[i]) << "delivery[" << i << "]";
    }
    EXPECT_EQ(rec.monitor->state_digest(), solo.digest);
    EXPECT_EQ(rec.report.snapshots_rejected, 0u);
    EXPECT_FALSE(rec.report.truncated) << rec.report.truncate_detail;

    // Tenant A's own recovery stays prefix-consistent (damage absorbed,
    // never thrown on): whatever it recovers is a prefix of A's stream.
    const RecoveredMonitor rec_a =
        recover_monitor(storage, ta.process_count(), tenant_options(ta),
                        ns_a);
    const auto order = ta.delivery_order();
    const auto log_a = rec_a.monitor->delivery_log();
    ASSERT_LE(log_a.size(), order.size());
  }
}

TEST(WalNamespace, LegacyNamespaceCoexistsWithTenants) {
  const Trace t = tenant_trace(91);
  SimulatedStorage storage;
  {
    LoggedTenant legacy = start_tenant(storage, t, "");
    LoggedTenant tenant = start_tenant(storage, t, wal::tenant_namespace(5));
    feed_interleaved(legacy, t, tenant, t);
    legacy.log->sync();
    tenant.log->sync();
  }
  for (const std::string& ns : {std::string(), wal::tenant_namespace(5)}) {
    const RecoveredMonitor rec =
        recover_monitor(storage, t.process_count(), tenant_options(t), ns);
    EXPECT_EQ(rec.monitor->delivery_log().size(), t.delivery_order().size())
        << "ns='" << ns << "'";
    EXPECT_FALSE(rec.report.truncated);
  }
}

}  // namespace
}  // namespace ct

// Integration sweep over the entire frozen 54-computation suite: every
// computation runs through the dynamic engine with coherent statistics, and
// precedence is spot-checked against the exact Fidge/Mattern store on a
// sample of computations from every family.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/static_pipeline.hpp"
#include "timestamp/fm_store.hpp"
#include "trace/suite.hpp"
#include "util/prng.hpp"

namespace ct {
namespace {

class SuiteIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    traces_ = new std::vector<Trace>(generate_standard_suite(true));
  }
  static void TearDownTestSuite() {
    delete traces_;
    traces_ = nullptr;
  }
  static std::vector<Trace>* traces_;
};

std::vector<Trace>* SuiteIntegration::traces_ = nullptr;

TEST_F(SuiteIntegration, EveryComputationTimestampsCoherently) {
  const auto& suite = standard_suite();
  for (std::size_t i = 0; i < traces_->size(); ++i) {
    const Trace& trace = (*traces_)[i];
    ClusterEngineConfig config{.max_cluster_size = 14,
                               .fm_vector_width = 300};
    ClusterTimestampEngine engine(trace.process_count(), config,
                                  make_merge_on_nth(10));
    engine.observe_trace(trace);
    const auto stats = engine.stats();
    ASSERT_EQ(stats.events, trace.event_count()) << suite[i].id;
    ASSERT_LE(stats.largest_cluster, 14u) << suite[i].id;
    ASSERT_LE(stats.cluster_receives, stats.events) << suite[i].id;
    ASSERT_LE(stats.exact_words, stats.encoded_words) << suite[i].id;
    const double ratio = stats.average_ratio(300);
    ASSERT_GT(ratio, 0.0) << suite[i].id;
    ASSERT_LE(ratio, 1.0) << suite[i].id;
    // The whole point: cheaper than Fidge/Mattern on every computation.
    ASSERT_LT(ratio, 0.9) << suite[i].id;
  }
}

TEST_F(SuiteIntegration, PrecedenceSpotChecksAcrossFamilies) {
  const auto& suite = standard_suite();
  // One representative per family, chosen by id prefix.
  std::vector<std::size_t> picks;
  std::string last_prefix;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const std::string prefix = suite[i].id.substr(0, suite[i].id.find('/'));
    if (prefix != last_prefix) {
      picks.push_back(i);
      last_prefix = prefix;
    }
  }
  ASSERT_GE(picks.size(), 4u);

  for (const std::size_t i : picks) {
    const Trace& trace = (*traces_)[i];
    const FmStore fm(trace);
    ClusterEngineConfig config{.max_cluster_size = 14,
                               .fm_vector_width = 300};
    ClusterTimestampEngine engine(trace.process_count(), config,
                                  make_merge_on_nth(10));
    engine.observe_trace(trace);
    Prng rng(1000 + i);
    const auto order = trace.delivery_order();
    for (int q = 0; q < 3000; ++q) {
      const EventId e = order[rng.index(order.size())];
      const EventId f = order[rng.index(order.size())];
      ASSERT_EQ(engine.precedes(trace.event(e), trace.event(f)),
                fm.precedes(e, f))
          << suite[i].id << ": " << e << " vs " << f;
    }
  }
}

TEST_F(SuiteIntegration, StaticBeatsNaiveBaselinesInAggregate) {
  // Aggregate sanity of the paper's core comparison on three spot sizes:
  // static greedy should beat fixed-contiguous on the large majority of
  // computations (it uses the communication structure; fixed does not).
  std::size_t greedy_wins = 0, total = 0;
  for (std::size_t i = 0; i < traces_->size(); i += 4) {
    const Trace& trace = (*traces_)[i];
    const double greedy =
        run_static(trace, StaticStrategy::kGreedy, 14).ratio;
    const double fixed =
        run_static(trace, StaticStrategy::kFixedContiguous, 14).ratio;
    greedy_wins += greedy <= fixed + 1e-9;
    ++total;
  }
  EXPECT_GE(greedy_wins * 10, total * 7)
      << greedy_wins << " of " << total;
}

}  // namespace
}  // namespace ct

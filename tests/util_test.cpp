// Unit tests for ct_util: PRNG, matrices, stats, bitsets, pools, CSV, CLI.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/ascii.hpp"
#include "util/bitset.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/flat_matrix.hpp"
#include "util/lru_cache.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/synchronized_lru.hpp"
#include "util/thread_pool.hpp"

namespace ct {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(CT_CHECK(false), CheckFailure);
  try {
    CT_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Prng, UniformRespectsBounds) {
  Prng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Prng, UniformCoversRange) {
  Prng rng(9);
  std::map<std::uint64_t, int> histogram;
  for (int i = 0; i < 5000; ++i) ++histogram[rng.uniform(0, 9)];
  EXPECT_EQ(histogram.size(), 10u);
  for (const auto& [value, count] : histogram) {
    EXPECT_GT(count, 300) << "value " << value << " under-represented";
  }
}

TEST(Prng, RealInUnitInterval) {
  Prng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Prng, ChanceExtremes) {
  Prng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Prng, SplitStreamsAreIndependent) {
  Prng parent(42);
  Prng child = parent.split();
  // The child stream must not replicate the parent's continuation.
  Prng parent_copy(42);
  (void)parent_copy.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child() == parent_copy());
  EXPECT_LT(equal, 4);
}

TEST(FlatMatrix, RoundTripAndGrow) {
  FlatMatrix<int> m(2, 3, 7);
  EXPECT_EQ(m(1, 2), 7);
  m(0, 1) = 5;
  m.grow(4, 4);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(0, 1), 5);
  EXPECT_EQ(m(1, 2), 7);
  EXPECT_EQ(m(3, 3), 0);
}

TEST(FlatMatrix, GrowIsNoOpWhenSmaller) {
  FlatMatrix<int> m(3, 3, 1);
  m.grow(2, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats whole, left, right;
  Prng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.real() * 100;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
}

TEST(Summary, PercentilesOfKnownSample) {
  const Summary s = Summary::of({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(s.median, 5.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.p25, 3.25);
  EXPECT_DOUBLE_EQ(s.p75, 7.75);
}

TEST(DynBitset, SetTestCount) {
  DynBitset b(130);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(DynBitset, OrWith) {
  DynBitset a(100), b(100);
  a.set(3);
  b.set(97);
  a.or_with(b);
  EXPECT_TRUE(a.test(3));
  EXPECT_TRUE(a.test(97));
  EXPECT_EQ(a.count(), 2u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_NE(cache.get(1), nullptr);  // 1 is now most-recent
  cache.put(3, 30);                  // evicts 2
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
}

TEST(LruCache, PutOverwrites) {
  LruCache<int, int> cache(4);
  cache.put(1, 10);
  cache.put(1, 11);
  EXPECT_EQ(*cache.get(1), 11);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  ThreadPool pool(4);
  parallel_for_index(pool, hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, WaitIdleAfterManySubmits) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsThenRejects) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran] { ++ran; });
  }
  EXPECT_FALSE(pool.stopped());
  pool.shutdown();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_TRUE(pool.stopped());
  pool.shutdown();  // idempotent
  EXPECT_THROW(pool.submit([] {}), CheckFailure);
}

TEST(SynchronizedLru, BasicPutGetEvict) {
  SynchronizedLruCache<int, std::string> cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  cache.put(1, "one");
  cache.put(2, "two");
  ASSERT_TRUE(cache.get(1).has_value());
  EXPECT_EQ(*cache.get(1), "one");
  cache.put(3, "three");  // evicts 2 (1 was touched more recently)
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(SynchronizedLru, ConcurrentMixedAccessIsSafe) {
  // Hammer one small cache from several threads; under TSan this validates
  // the locking (the raw LruCache mutates recency order even on get()).
  SynchronizedLruCache<int, int> cache(16);
  std::vector<std::thread> threads;
  std::atomic<int> hits{0};
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&cache, &hits, w] {
      for (int i = 0; i < 2000; ++i) {
        const int key = (w * 7 + i) % 32;
        if (const auto v = cache.get(key)) {
          EXPECT_EQ(*v, key * 3);
          ++hits;
        } else {
          cache.put(key, key * 3);
        }
        if (i % 500 == 0 && w == 0) cache.clear();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(hits.load(), 0);
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.row({"plain", "has,comma"});
  w.row({"has\"quote", "has\nnewline"});
  EXPECT_EQ(os.str(),
            "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",\"has\nnewline\"\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(Csv, RejectsRaggedRows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), CheckFailure);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog",   "--alpha=1", "pos1", "--beta", "2",
                        "--gamma", "--delta=x y"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int_or("alpha", 0), 1);
  EXPECT_EQ(args.get_int_or("beta", 0), 2);
  // A bare flag followed by another flag is boolean.
  EXPECT_TRUE(args.get_bool_or("gamma", false));
  EXPECT_EQ(args.get_or("delta", ""), "x y");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, RejectsBadNumbers) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_int_or("n", 0), CheckFailure);
}

TEST(Cli, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--unused=2"};
  CliArgs args(3, argv);
  (void)args.get("used");
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(Ascii, TableRendersAllCells) {
  AsciiTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
}

TEST(Ascii, PlotRendersSeriesGlyphs) {
  AsciiPlot plot("title", "x", "y", {0, 1, 2, 3});
  plot.add_series({"s1", {0.0, 0.5, 1.0, 0.5}});
  std::ostringstream os;
  plot.print(os, 40, 10);
  const std::string s = os.str();
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("title"), std::string::npos);
}

TEST(Ascii, PlotRejectsMismatchedSeries) {
  AsciiPlot plot("t", "x", "y", {0, 1, 2});
  EXPECT_THROW(plot.add_series({"bad", {1.0}}), CheckFailure);
}

}  // namespace
}  // namespace ct

// Unit tests for ct_util: PRNG, matrices, stats, bitsets, pools, CSV, CLI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/ascii.hpp"
#include "util/bitset.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/crc32c.hpp"
#include "util/csv.hpp"
#include "util/epoch.hpp"
#include "util/flat_matrix.hpp"
#include "util/lru_cache.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/synchronized_lru.hpp"
#include "util/thread_pool.hpp"
#include "util/varint.hpp"

namespace ct {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(CT_CHECK(false), CheckFailure);
  try {
    CT_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Prng, UniformRespectsBounds) {
  Prng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Prng, UniformCoversRange) {
  Prng rng(9);
  std::map<std::uint64_t, int> histogram;
  for (int i = 0; i < 5000; ++i) ++histogram[rng.uniform(0, 9)];
  EXPECT_EQ(histogram.size(), 10u);
  for (const auto& [value, count] : histogram) {
    EXPECT_GT(count, 300) << "value " << value << " under-represented";
  }
}

TEST(Prng, RealInUnitInterval) {
  Prng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Prng, ChanceExtremes) {
  Prng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Prng, SplitStreamsAreIndependent) {
  Prng parent(42);
  Prng child = parent.split();
  // The child stream must not replicate the parent's continuation.
  Prng parent_copy(42);
  (void)parent_copy.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child() == parent_copy());
  EXPECT_LT(equal, 4);
}

TEST(FlatMatrix, RoundTripAndGrow) {
  FlatMatrix<int> m(2, 3, 7);
  EXPECT_EQ(m(1, 2), 7);
  m(0, 1) = 5;
  m.grow(4, 4);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m(0, 1), 5);
  EXPECT_EQ(m(1, 2), 7);
  EXPECT_EQ(m(3, 3), 0);
}

TEST(FlatMatrix, GrowIsNoOpWhenSmaller) {
  FlatMatrix<int> m(3, 3, 1);
  m.grow(2, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats whole, left, right;
  Prng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.real() * 100;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
}

TEST(Summary, PercentilesOfKnownSample) {
  const Summary s = Summary::of({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(s.median, 5.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.p25, 3.25);
  EXPECT_DOUBLE_EQ(s.p75, 7.75);
}

TEST(DynBitset, SetTestCount) {
  DynBitset b(130);
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(DynBitset, OrWith) {
  DynBitset a(100), b(100);
  a.set(3);
  b.set(97);
  a.or_with(b);
  EXPECT_TRUE(a.test(3));
  EXPECT_TRUE(a.test(97));
  EXPECT_EQ(a.count(), 2u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  EXPECT_NE(cache.get(1), nullptr);  // 1 is now most-recent
  cache.put(3, 30);                  // evicts 2
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
}

TEST(LruCache, PutOverwrites) {
  LruCache<int, int> cache(4);
  cache.put(1, 10);
  cache.put(1, 11);
  EXPECT_EQ(*cache.get(1), 11);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  ThreadPool pool(4);
  parallel_for_index(pool, hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, WaitIdleAfterManySubmits) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsThenRejects) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran] { ++ran; });
  }
  EXPECT_FALSE(pool.stopped());
  pool.shutdown();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_TRUE(pool.stopped());
  pool.shutdown();  // idempotent
  EXPECT_THROW(pool.submit([] {}), CheckFailure);
}

TEST(ThreadPool, TrySubmitRacingShutdownRunsExactlyTheAccepted) {
  // The try_submit contract under a live race: accepted => the task runs
  // before shutdown() returns; rejected => it never runs. Producers hammer
  // from foreign threads while the owner shuts the pool down mid-stream —
  // the accepted and executed counts must agree exactly. Run under TSan in
  // CI, this also validates the queue/worker synchronization.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<int> accepted{0};
    std::atomic<int> ran{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> producers;
    for (int w = 0; w < 4; ++w) {
      producers.emplace_back([&pool, &accepted, &ran, &go] {
        while (!go.load()) {
        }
        for (int i = 0; i < 500; ++i) {
          if (pool.try_submit([&ran] { ran.fetch_add(1); })) {
            accepted.fetch_add(1);
          }
        }
      });
    }
    go.store(true);
    pool.shutdown();
    // Post-shutdown: every accepted task has already executed...
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
    for (std::thread& p : producers) p.join();
    // ...and late producers were all refused, never dropped silently.
    EXPECT_EQ(ran.load(), accepted.load()) << "round " << round;
    EXPECT_FALSE(pool.try_submit([&ran] { ran.fetch_add(1); }));
  }
}

TEST(ThreadPool, ConcurrentShutdownCallersAllObserveTheDrain) {
  // shutdown() from several threads at once: every caller must block until
  // the drain completes, so each observes "no task running, none pending".
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  std::vector<std::thread> closers;
  for (int w = 0; w < 4; ++w) {
    closers.emplace_back([&pool, &ran] {
      pool.shutdown();
      EXPECT_EQ(ran.load(), 64);
      EXPECT_TRUE(pool.stopped());
    });
  }
  for (std::thread& c : closers) c.join();
  EXPECT_EQ(ran.load(), 64);
}

TEST(SynchronizedLru, BasicPutGetEvict) {
  SynchronizedLruCache<int, std::string> cache(2);
  EXPECT_EQ(cache.capacity(), 2u);
  cache.put(1, "one");
  cache.put(2, "two");
  ASSERT_TRUE(cache.get(1).has_value());
  EXPECT_EQ(*cache.get(1), "one");
  cache.put(3, "three");  // evicts 2 (1 was touched more recently)
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(SynchronizedLru, ConcurrentMixedAccessIsSafe) {
  // Hammer one small cache from several threads; under TSan this validates
  // the locking (the raw LruCache mutates recency order even on get()).
  SynchronizedLruCache<int, int> cache(16);
  std::vector<std::thread> threads;
  std::atomic<int> hits{0};
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&cache, &hits, w] {
      for (int i = 0; i < 2000; ++i) {
        const int key = (w * 7 + i) % 32;
        if (const auto v = cache.get(key)) {
          EXPECT_EQ(*v, key * 3);
          ++hits;
        } else {
          cache.put(key, key * 3);
        }
        if (i % 500 == 0 && w == 0) cache.clear();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(hits.load(), 0);
}

TEST(Epoch, RetireDefersUntilPinnedReaderUnpins) {
  util::EpochDomain domain;
  bool reclaimed = false;
  {
    const util::EpochDomain::Guard guard = domain.pin();
    EXPECT_TRUE(guard.pinned());
    domain.retire([&reclaimed] { reclaimed = true; });
    EXPECT_EQ(domain.limbo_size(), 1u);
    // The reader pinned BEFORE the retire must hold the entry in limbo.
    EXPECT_EQ(domain.collect(), 0u);
    EXPECT_FALSE(reclaimed);
  }
  EXPECT_EQ(domain.collect(), 1u);
  EXPECT_TRUE(reclaimed);
  EXPECT_EQ(domain.limbo_size(), 0u);
}

TEST(Epoch, RetireWithNoReadersIsReclaimedPromptly) {
  util::EpochDomain domain;
  int runs = 0;
  domain.retire([&runs] { ++runs; });
  domain.retire([&runs] { ++runs; });
  domain.collect();
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(domain.limbo_size(), 0u);
}

TEST(Epoch, NestedPinsKeepTheOlderStamp) {
  util::EpochDomain domain;
  bool reclaimed = false;
  auto outer = domain.pin();
  domain.retire([&reclaimed] { reclaimed = true; });
  {
    // The inner pin reuses the thread's slot and must NOT overwrite the
    // outer (older) stamp — dropping it must not release the entry.
    const util::EpochDomain::Guard inner = domain.pin();
    EXPECT_TRUE(inner.pinned());
  }
  EXPECT_EQ(domain.collect(), 0u);
  EXPECT_FALSE(reclaimed);
  outer = util::EpochDomain::Guard();  // drop the outer pin
  EXPECT_EQ(domain.collect(), 1u);
  EXPECT_TRUE(reclaimed);
}

TEST(Epoch, MoveTransfersThePin) {
  util::EpochDomain domain;
  bool reclaimed = false;
  util::EpochDomain::Guard a = domain.pin();
  domain.retire([&reclaimed] { reclaimed = true; });
  util::EpochDomain::Guard b = std::move(a);
  EXPECT_TRUE(b.pinned());
  a = util::EpochDomain::Guard();  // moved-from reset: must not unpin b
  EXPECT_EQ(domain.collect(), 0u);
  b = util::EpochDomain::Guard();
  EXPECT_EQ(domain.collect(), 1u);
  EXPECT_TRUE(reclaimed);
}

TEST(Epoch, SynchronizeWaitsForPreSwapReaders) {
  util::EpochDomain domain;
  std::atomic<bool> reader_pinned{false};
  std::atomic<bool> release_reader{false};
  std::atomic<bool> synchronized{false};

  std::thread reader([&] {
    const util::EpochDomain::Guard guard = domain.pin();
    reader_pinned.store(true);
    while (!release_reader.load()) std::this_thread::yield();
  });
  while (!reader_pinned.load()) std::this_thread::yield();

  std::thread writer([&] {
    domain.synchronize();
    synchronized.store(true);
  });
  // synchronize() must not return while the pre-existing reader is pinned.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(synchronized.load());

  release_reader.store(true);
  reader.join();
  writer.join();
  EXPECT_TRUE(synchronized.load());
}

TEST(Epoch, ContinuousReadersDoNotStarveWritersOrLeakLimbo) {
  // Readers pin in a tight loop the whole time; the writer must still push
  // grace periods through (post-bump pins don't hold pre-bump entries) and
  // every retired entry must eventually be reclaimed. Under TSan this is
  // also the ordering check on the slot stamps and the limbo list.
  util::EpochDomain domain;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> pins{0};
  std::vector<std::thread> readers;
  for (int w = 0; w < 3; ++w) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const util::EpochDomain::Guard guard = domain.pin();
        pins.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Only start writing once readers are actually overlapping the writer.
  while (pins.load(std::memory_order_relaxed) == 0) std::this_thread::yield();

  std::atomic<int> reclaimed{0};
  for (int i = 0; i < 200; ++i) {
    domain.retire([&reclaimed] { ++reclaimed; });
    if (i % 4 == 0) domain.synchronize();
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  domain.collect();
  EXPECT_EQ(reclaimed.load(), 200);
  EXPECT_EQ(domain.limbo_size(), 0u);
  EXPECT_GT(pins.load(), 0u);
  EXPECT_GT(domain.grace_epoch(), 200u);
}

TEST(Epoch, GlobalDomainServesManyThreads) {
  // The global domain's per-thread slots: spawn threads that pin/unpin the
  // singleton and exit (exercising the thread-local slot release), twice,
  // so reused slots are covered too.
  for (int round = 0; round < 2; ++round) {
    std::vector<std::thread> threads;
    for (int w = 0; w < 8; ++w) {
      threads.emplace_back([] {
        for (int i = 0; i < 100; ++i) {
          const util::EpochDomain::Guard guard =
              util::EpochDomain::global().pin();
          EXPECT_TRUE(guard.pinned());
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  util::EpochDomain::global().synchronize();  // no pinned readers remain
}

TEST(Csv, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  w.row({"plain", "has,comma"});
  w.row({"has\"quote", "has\nnewline"});
  EXPECT_EQ(os.str(),
            "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",\"has\nnewline\"\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(Csv, RejectsRaggedRows) {
  std::ostringstream os;
  CsvWriter w(os, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), CheckFailure);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog",   "--alpha=1", "pos1", "--beta", "2",
                        "--gamma", "--delta=x y"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int_or("alpha", 0), 1);
  EXPECT_EQ(args.get_int_or("beta", 0), 2);
  // A bare flag followed by another flag is boolean.
  EXPECT_TRUE(args.get_bool_or("gamma", false));
  EXPECT_EQ(args.get_or("delta", ""), "x y");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, RejectsBadNumbers) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_int_or("n", 0), CheckFailure);
}

TEST(Cli, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--unused=2"};
  CliArgs args(3, argv);
  (void)args.get("used");
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(Ascii, TableRendersAllCells) {
  AsciiTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
}

TEST(Ascii, PlotRendersSeriesGlyphs) {
  AsciiPlot plot("title", "x", "y", {0, 1, 2, 3});
  plot.add_series({"s1", {0.0, 0.5, 1.0, 0.5}});
  std::ostringstream os;
  plot.print(os, 40, 10);
  const std::string s = os.str();
  EXPECT_NE(s.find('*'), std::string::npos);
  EXPECT_NE(s.find("title"), std::string::npos);
}

TEST(Ascii, PlotRejectsMismatchedSeries) {
  AsciiPlot plot("t", "x", "y", {0, 1, 2});
  EXPECT_THROW(plot.add_series({"bad", {1.0}}), CheckFailure);
}

// ----------------------------------------------------------------- crc32c

TEST(Crc32c, KnownVectors) {
  // RFC 3720 §B.4 test vectors.
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_EQ(crc32c("123456789"), 0xe3069283u);
  EXPECT_EQ(crc32c(std::string(32, '\0')), 0x8a9136aau);
  EXPECT_EQ(crc32c(std::string(32, '\xff')), 0x62a8ab43u);
}

TEST(Crc32c, SeedComposesAcrossSplits) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(data);
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    EXPECT_EQ(crc32c(data.substr(cut), crc32c(data.substr(0, cut))), whole);
  }
}

TEST(Crc32c, DetectsEverySingleBitFlip) {
  const std::string data = "wal frame payload under test";
  const std::uint32_t good = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = data;
      bad[byte] = static_cast<char>(bad[byte] ^ (1 << bit));
      EXPECT_NE(crc32c(bad), good) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(Crc32c, HardwareTierMatchesTheTableTier) {
  // crc32c_long (SSE4.2 where available) must be bit-identical to the byte
  // table across sizes, alignments, and seeds — every stored checksum in
  // the WAL and the columnar store depends on the tiers agreeing.
  Prng prng(7);
  for (const std::size_t size : std::vector<std::size_t>{
           0, 1, 7, 8, 9, 63, 64, 65, 1000, 4096, 70000}) {
    std::string data(size, '\0');
    for (char& c : data) c = static_cast<char>(prng.index(256));
    for (const std::uint32_t seed : {0u, 0xdeadbeefu}) {
      const std::uint32_t table = ~detail::crc32c_table_raw(data, ~seed);
      EXPECT_EQ(crc32c_long(data, seed), table) << "size " << size;
      EXPECT_EQ(crc32c(data, seed), table) << "size " << size;
      // Misaligned start: the hardware tier's alignment preamble.
      if (size > 3) {
        const std::string_view tail = std::string_view(data).substr(3);
        EXPECT_EQ(crc32c_long(tail, seed),
                  ~detail::crc32c_table_raw(tail, ~seed));
      }
    }
  }
}

// --------------------------------------------------- varint (hardened decode)

// Exhaustive boundary sweep: every 7-bit length boundary round-trips and
// decodes to the exact encoded length; the value one past each boundary
// takes one more byte.
TEST(Varint, EveryLengthBoundaryRoundTrips) {
  for (int bytes = 1; bytes <= 10; ++bytes) {
    // Smallest and largest value of each encoded length.
    const std::uint64_t lo =
        bytes == 1 ? 0 : (std::uint64_t{1} << (7 * (bytes - 1)));
    const std::uint64_t hi = bytes == 10
                                 ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << (7 * bytes)) - 1;
    for (const std::uint64_t v : {lo, lo + 1, hi - 1, hi}) {
      std::string buf;
      put_varint(buf, v);
      ASSERT_EQ(buf.size(), static_cast<std::size_t>(bytes)) << v;
      const VarintDecode d = try_get_varint(buf, 0);
      ASSERT_TRUE(d.ok()) << v << ": " << to_string(d.error);
      EXPECT_EQ(d.value, v);
      EXPECT_EQ(d.length, bytes);
    }
  }
}

// Every truncation point of every encoded length is reported kTruncated —
// never a read past the buffer, never a silently short value.
TEST(Varint, EveryTruncationPointIsStructurallyRejected) {
  for (int bytes = 1; bytes <= 10; ++bytes) {
    const std::uint64_t v =
        bytes == 10 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << (7 * bytes)) - 1;
    std::string buf;
    put_varint(buf, v);
    ASSERT_EQ(buf.size(), static_cast<std::size_t>(bytes));
    for (std::size_t len = 0; len < buf.size(); ++len) {
      const VarintDecode d = try_get_varint(buf.substr(0, len), 0);
      EXPECT_EQ(d.error, VarintError::kTruncated)
          << bytes << "-byte encoding cut to " << len;
    }
    std::size_t pos = 0;
    std::string cut = buf.substr(0, buf.size() - 1);
    EXPECT_THROW((void)get_varint(cut, pos), CheckFailure);
  }
}

// Overlong (zero-padded) encodings of every value length are rejected as
// non-canonical rather than decoded to an aliased value.
TEST(Varint, OverlongPaddedEncodingsAreRejected) {
  for (const std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 16384ull}) {
    std::string canonical;
    put_varint(canonical, v);
    for (std::size_t pad = 1; canonical.size() + pad <= 11; ++pad) {
      std::string buf = canonical;
      buf.back() = static_cast<char>(buf.back() | 0x80);
      for (std::size_t i = 1; i < pad; ++i) buf.push_back('\x80');
      buf.push_back('\x00');
      const VarintDecode d = try_get_varint(buf, 0);
      EXPECT_FALSE(d.ok()) << "value " << v << " padded by " << pad;
      EXPECT_TRUE(d.error == VarintError::kOverlong ||
                  d.error == VarintError::kTooLong)
          << to_string(d.error);
    }
  }
}

TEST(Varint, TenthByteOverflowBitsAreRejected) {
  // 2^63 encodes as nine 0x80 continuations plus a final 0x01; any larger
  // final byte would claim bits past 2^64.
  std::string max_ok(9, '\x80');
  max_ok += '\x01';
  const VarintDecode good = try_get_varint(max_ok, 0);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value, std::uint64_t{1} << 63);

  for (int final_byte : {0x02, 0x03, 0x40, 0x7f}) {
    std::string bad(9, '\x80');
    bad += static_cast<char>(final_byte);
    EXPECT_EQ(try_get_varint(bad, 0).error, VarintError::kOverlong)
        << "final byte " << final_byte;
  }
}

TEST(Varint, ElevenByteEncodingsAreTooLong) {
  std::string bad(10, '\x80');
  bad += '\x01';
  EXPECT_EQ(try_get_varint(bad, 0).error, VarintError::kTooLong);
  // All-continuation garbage of any longer length: same structured error.
  std::string garbage(64, '\xff');
  EXPECT_EQ(try_get_varint(garbage, 0).error, VarintError::kTooLong);
}

TEST(Varint, ThrowingReaderNamesErrorAndOffset) {
  std::string buf = "ab";  // valid 1-byte varints
  buf += '\xff';           // truncated encoding at offset 2
  std::size_t pos = 0;
  EXPECT_EQ(get_varint(buf, pos), static_cast<std::uint64_t>('a'));
  EXPECT_EQ(get_varint(buf, pos), static_cast<std::uint64_t>('b'));
  try {
    (void)get_varint(buf, pos);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("offset 2"), std::string::npos) << what;
  }
  EXPECT_EQ(pos, 2u) << "failed decode must not advance the cursor";
}

TEST(Varint, DecodeNeverReadsPastAdvertisedSize) {
  // A buffer whose tail would complete the encoding if over-read: the
  // string_view length must be authoritative.
  const std::string backing = std::string("\xff\xff", 2) + '\x01';
  const VarintDecode d =
      try_get_varint(std::string_view(backing.data(), 2), 0);
  EXPECT_EQ(d.error, VarintError::kTruncated);
}

}  // namespace
}  // namespace ct

// Crash-consistent durability tests (docs/FAULT_MODEL.md §7): the simulated
// storage's crash model, the write-ahead log's framing / rotation /
// checkpoint pruning, prefix-consistent recovery under every storage fault,
// recovery idempotency across clustering strategies, and the crash-point
// sweep harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "durability/recovery.hpp"
#include "durability/storage.hpp"
#include "durability/wal.hpp"
#include "model/event.hpp"
#include "monitor/monitor.hpp"
#include "simcheck/crash_sweep.hpp"
#include "simcheck/generator.hpp"
#include "simcheck/schedule.hpp"
#include "util/check.hpp"

namespace ct {
namespace {

MonitorOptions options_for(std::size_t process_count) {
  MonitorOptions mo;
  mo.backend = TimestampBackend::kClusterDynamic;
  mo.cluster.max_cluster_size = 8;
  mo.cluster.fm_vector_width = process_count;
  mo.nth_threshold = 4.0;
  return mo;
}

Event make(ProcessId p, EventIndex i, EventKind k,
           EventId partner = kNoEvent) {
  Event e;
  e.id = EventId{p, i};
  e.kind = k;
  e.partner = partner;
  return e;
}

/// A small causally ordered stream over `n` processes: rounds of unary
/// events with a send/receive between neighbors each round.
std::vector<Event> small_stream(std::size_t n, std::size_t rounds) {
  std::vector<Event> out;
  std::vector<EventIndex> next(n, 1);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (ProcessId p = 0; p < n; ++p) {
      out.push_back(make(p, next[p]++, EventKind::kUnary));
    }
    const ProcessId a = static_cast<ProcessId>(r % n);
    const ProcessId b = static_cast<ProcessId>((r + 1) % n);
    const EventIndex ai = next[a]++;
    const EventIndex bi = next[b]++;
    out.push_back(make(a, ai, EventKind::kSend, EventId{b, bi}));
    out.push_back(make(b, bi, EventKind::kReceive, EventId{a, ai}));
  }
  return out;
}

/// Emits of a generated schedule — a realistic fault-mangled stream.
std::vector<Event> schedule_stream(std::uint64_t seed,
                                   std::uint32_t* process_count) {
  const SimSchedule s = generate_schedule(seed);
  *process_count = s.process_count;
  std::vector<Event> out;
  for (const SimOp& op : s.ops) {
    if (op.kind == SimOp::Kind::kEmit) out.push_back(op.event);
  }
  return out;
}

// ---------------------------------------------------------------------------
// SimulatedStorage crash model
// ---------------------------------------------------------------------------

TEST(SimStorage, CleanMaterializeKeepsEveryByte) {
  SimulatedStorage sim;
  sim.create("a");
  sim.append("a", "hello ");
  sim.append("a", "world");
  const auto img = sim.materialize({sim.op_count(), CrashFault::kClean, 7});
  EXPECT_EQ(img->read("a"), "hello world");
}

TEST(SimStorage, LostSuffixKeepsExactlyTheSyncedPrefix) {
  SimulatedStorage sim;
  sim.create("a");
  sim.append("a", "durable|");
  sim.sync("a");
  sim.append("a", "volatile");
  const auto img =
      sim.materialize({sim.op_count(), CrashFault::kLostSuffix, 7});
  EXPECT_EQ(img->read("a"), "durable|");
}

TEST(SimStorage, SyncOnlyCoversItsOwnObject) {
  SimulatedStorage sim;
  sim.create("a");
  sim.create("b");
  sim.append("a", "aaaa");
  sim.append("b", "bbbb");
  sim.sync("a");
  const auto img =
      sim.materialize({sim.op_count(), CrashFault::kLostSuffix, 1});
  EXPECT_EQ(img->read("a"), "aaaa");
  EXPECT_EQ(img->read("b"), "");
}

TEST(SimStorage, ShortWriteCutsAtAppendBoundaries) {
  SimulatedStorage sim;
  sim.create("a");
  sim.append("a", "one|");
  sim.append("a", "two|");
  sim.append("a", "three|");
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const auto img =
        sim.materialize({sim.op_count(), CrashFault::kShortWrite, seed});
    const std::string got = img->read("a");
    EXPECT_TRUE(got.empty() || got == "one|" || got == "one|two|")
        << "unexpected short-write image: '" << got << "'";
  }
}

TEST(SimStorage, TornWriteCutsMidAppend) {
  SimulatedStorage sim;
  sim.create("a");
  sim.append("a", "0123456789");
  bool saw_partial = false;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const auto img =
        sim.materialize({sim.op_count(), CrashFault::kTornWrite, seed});
    const std::string got = img->read("a");
    EXPECT_TRUE(std::string("0123456789").starts_with(got));
    saw_partial = saw_partial || (!got.empty() && got.size() < 10);
  }
  EXPECT_TRUE(saw_partial) << "torn write never produced a partial append";
}

TEST(SimStorage, BitRotFlipsExactlyOneUnsyncedBit) {
  SimulatedStorage sim;
  sim.create("a");
  sim.append("a", "synced");
  sim.sync("a");
  sim.append("a", std::string(8, '\0'));
  const auto img = sim.materialize({sim.op_count(), CrashFault::kBitRot, 3});
  const std::string got = img->read("a");
  ASSERT_EQ(got.size(), 14u);
  EXPECT_EQ(got.substr(0, 6), "synced") << "bit rot hit the synced prefix";
  int flipped = 0;
  for (std::size_t i = 6; i < got.size(); ++i) {
    flipped += std::popcount(static_cast<unsigned>(
        static_cast<unsigned char>(got[i])));
  }
  EXPECT_EQ(flipped, 1);
}

TEST(SimStorage, StaleSegmentDropsOneUnsyncedCreation) {
  SimulatedStorage sim;
  sim.create("old");
  sim.append("old", "x");
  sim.sync("old");
  sim.sync_dir();
  sim.create("fresh");
  sim.append("fresh", "y");
  sim.sync("fresh");  // data synced — but the dir entry never was
  const auto img =
      sim.materialize({sim.op_count(), CrashFault::kStaleSegment, 5});
  EXPECT_TRUE(img->exists("old"));
  EXPECT_FALSE(img->exists("fresh"));
}

TEST(SimStorage, MaterializeIsDeterministic) {
  SimulatedStorage sim;
  sim.create("a");
  for (int i = 0; i < 20; ++i) sim.append("a", "chunk" + std::to_string(i));
  for (const CrashFault fault :
       {CrashFault::kShortWrite, CrashFault::kTornWrite, CrashFault::kBitRot}) {
    const auto x = sim.materialize({sim.op_count(), fault, 42});
    const auto y = sim.materialize({sim.op_count(), fault, 42});
    EXPECT_EQ(x->read("a"), y->read("a")) << to_string(fault);
  }
}

TEST(SimStorage, DoubleCrashPreservesTheMaterializedBase) {
  SimulatedStorage sim;
  sim.create("a");
  sim.append("a", "first");
  sim.sync("a");
  auto crashed = sim.materialize({sim.op_count(), CrashFault::kLostSuffix, 1});
  // The survivor writes more, then crashes again before syncing.
  crashed->append("a", "+second");
  const auto again =
      crashed->materialize({crashed->op_count(), CrashFault::kLostSuffix, 2});
  EXPECT_EQ(again->read("a"), "first");
}

// ---------------------------------------------------------------------------
// WAL + recovery
// ---------------------------------------------------------------------------

/// Feeds `stream` into a monitor with an attached log; returns the monitor's
/// final digest.
std::uint64_t record_stream(const std::vector<Event>& stream,
                            std::size_t process_count, SimulatedStorage& sim,
                            const WalOptions& wo,
                            std::size_t checkpoint_every = 0) {
  MonitoringEntity monitor(process_count, options_for(process_count));
  DurableLog log(sim, wo);
  monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
  std::size_t fed = 0;
  for (const Event& e : stream) {
    monitor.ingest(e);
    if (checkpoint_every != 0 && ++fed % checkpoint_every == 0) {
      log.checkpoint(monitor);
    }
  }
  log.sync();
  return monitor.state_digest();
}

TEST(Wal, CleanRecoveryIsBitIdentical) {
  const std::vector<Event> stream = small_stream(4, 12);
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kEveryN;
  wo.sync_every = 5;
  const std::uint64_t want = record_stream(stream, 4, sim, wo);

  const auto img = sim.materialize({sim.op_count(), CrashFault::kClean, 0});
  const RecoveredMonitor rec = recover_monitor(*img, 4, options_for(4));
  EXPECT_FALSE(rec.report.truncated) << rec.report.truncate_detail;
  EXPECT_EQ(rec.report.recovered_seq, stream.size());
  EXPECT_EQ(rec.monitor->state_digest(), want);
  EXPECT_TRUE(rec.monitor->health().accounted());
}

TEST(Wal, LostSuffixRecoversTheSyncedPrefixExactly) {
  const std::vector<Event> stream = small_stream(4, 12);
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kEveryN;
  wo.sync_every = 7;
  MonitoringEntity monitor(4, options_for(4));
  DurableLog log(sim, wo);
  monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
  for (const Event& e : stream) monitor.ingest(e);
  // No final sync: the tail past the last every-7 commit is volatile.
  const std::uint64_t synced = log.synced_record_seq();
  const std::uint64_t total = log.next_record_seq();
  ASSERT_LT(synced, total);

  const auto img =
      sim.materialize({sim.op_count(), CrashFault::kLostSuffix, 3});
  const RecoveredMonitor rec = recover_monitor(*img, 4, options_for(4));
  EXPECT_EQ(rec.report.recovered_seq, synced);
  rec.monitor->note_wal_loss(total - rec.report.recovered_seq);
  EXPECT_EQ(rec.monitor->health().wal_lost, total - synced);
  EXPECT_TRUE(rec.monitor->health().accounted());
  // The recovered log is the exact delivered prefix.
  const auto logged = rec.monitor->delivery_log();
  const auto full = monitor.delivery_log();
  ASSERT_LE(logged.size(), full.size());
  EXPECT_TRUE(std::equal(logged.begin(), logged.end(), full.begin()));
}

TEST(Wal, EveryRecordPolicyLosesAtMostTheInFlightRecord) {
  const std::vector<Event> stream = small_stream(3, 10);
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kEveryRecord;
  record_stream(stream, 3, sim, wo);
  for (const std::size_t cut : sim.append_points()) {
    const auto img = sim.materialize({cut, CrashFault::kLostSuffix, 1});
    const auto perfect = sim.materialize({cut, CrashFault::kClean, 0});
    const RecoveredMonitor got = recover_monitor(*img, 3, options_for(3));
    const RecoveredMonitor want = recover_monitor(*perfect, 3, options_for(3));
    EXPECT_LE(want.report.recovered_seq - got.report.recovered_seq, 1u)
        << "cut " << cut;
  }
}

TEST(Wal, TornFrameTruncatesAtFirstInvalidFrame) {
  const std::vector<Event> stream = small_stream(4, 8);
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kNone;
  record_stream(stream, 4, sim, wo);
  bool saw_truncation = false;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto img =
        sim.materialize({sim.op_count() - 1, CrashFault::kTornWrite, seed});
    const RecoveredMonitor rec = recover_monitor(*img, 4, options_for(4));
    EXPECT_TRUE(rec.monitor->health().accounted());
    EXPECT_LE(rec.report.recovered_seq, stream.size());
    saw_truncation = saw_truncation || rec.report.truncated;
  }
  EXPECT_TRUE(saw_truncation);
}

TEST(Wal, BitRotIsDetectedAndTruncated) {
  const std::vector<Event> stream = small_stream(4, 10);
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kNone;
  {
    // No final sync: kBitRot only corrupts bytes the log never synced, so
    // the whole record region must still be volatile at the crash cut.
    MonitoringEntity monitor(4, options_for(4));
    DurableLog log(sim, wo);
    monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
    for (const Event& e : stream) monitor.ingest(e);
  }
  // Flip a bit in the un-synced record region; the CRC must catch it and
  // recovery must stop (prefix-consistent), never deliver a mangled event.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto img =
        sim.materialize({sim.op_count(), CrashFault::kBitRot, seed});
    const RecoveredMonitor rec = recover_monitor(*img, 4, options_for(4));
    EXPECT_TRUE(rec.monitor->health().accounted());
    EXPECT_TRUE(rec.report.truncated) << "seed " << seed;
  }
}

TEST(Wal, RotationChainsSegmentsAndRecoversAcrossThem) {
  const std::vector<Event> stream = small_stream(4, 40);
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kEveryN;
  wo.sync_every = 4;
  wo.segment_bytes = 256;  // force many rotations
  const std::uint64_t want = record_stream(stream, 4, sim, wo);
  std::size_t segments = 0;
  for (const std::string& name : sim.list()) {
    segments += wal::parse_segment_name(name).has_value();
  }
  EXPECT_GT(segments, 3u);

  const auto img = sim.materialize({sim.op_count(), CrashFault::kClean, 0});
  const RecoveredMonitor rec = recover_monitor(*img, 4, options_for(4));
  EXPECT_FALSE(rec.report.truncated) << rec.report.truncate_detail;
  EXPECT_EQ(rec.monitor->state_digest(), want);
  EXPECT_EQ(rec.report.segments_scanned, segments);
}

TEST(Wal, MissingMiddleSegmentStopsPrefixConsistent) {
  const std::vector<Event> stream = small_stream(4, 40);
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kEveryN;
  wo.sync_every = 4;
  wo.segment_bytes = 256;
  record_stream(stream, 4, sim, wo);
  std::vector<std::string> segments;
  for (const std::string& name : sim.list()) {
    if (wal::parse_segment_name(name)) segments.push_back(name);
  }
  ASSERT_GT(segments.size(), 2u);
  sim.remove(segments[1]);

  const auto img = sim.materialize({sim.op_count(), CrashFault::kClean, 0});
  const RecoveredMonitor rec = recover_monitor(*img, 4, options_for(4));
  EXPECT_TRUE(rec.report.truncated);
  EXPECT_NE(rec.report.truncate_detail.find("gap"), std::string::npos)
      << rec.report.truncate_detail;
  // Only the first segment's records survive — never a resynthesized order.
  EXPECT_TRUE(rec.monitor->health().accounted());
  EXPECT_LT(rec.report.recovered_seq, stream.size());
}

TEST(Wal, CheckpointPrunesCoveredSegmentsAndStaleSnapshots) {
  const std::vector<Event> stream = small_stream(4, 60);
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kOnCheckpoint;
  wo.segment_bytes = 256;
  wo.retain_checkpoints = 2;
  const std::uint64_t want = record_stream(stream, 4, sim, wo, 50);

  std::size_t snapshots = 0, segments = 0;
  for (const std::string& name : sim.list()) {
    snapshots += wal::parse_snapshot_name(name).has_value();
    segments += wal::parse_segment_name(name).has_value();
  }
  EXPECT_LE(snapshots, 2u);
  EXPECT_GE(snapshots, 1u);
  // Pruning must have removed fully covered segments: far fewer on disk
  // than the rotation count implies.
  EXPECT_LT(segments, 12u);

  const auto img = sim.materialize({sim.op_count(), CrashFault::kClean, 0});
  const RecoveredMonitor rec = recover_monitor(*img, 4, options_for(4));
  EXPECT_FALSE(rec.report.truncated) << rec.report.truncate_detail;
  EXPECT_FALSE(rec.report.snapshot_object.empty());
  EXPECT_GT(rec.report.snapshot_seq, 0u);
  EXPECT_EQ(rec.monitor->state_digest(), want);
}

TEST(Wal, CorruptSnapshotFallsBackToOlderOrScratch) {
  const std::vector<Event> stream = small_stream(4, 30);
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kEveryN;
  wo.sync_every = 4;
  wo.retain_checkpoints = 2;
  const std::uint64_t want = record_stream(stream, 4, sim, wo, 40);

  // Mangle the newest snapshot: its CRC trailer must reject it whole.
  std::string newest;
  for (const std::string& name : sim.list()) {
    if (wal::parse_snapshot_name(name)) newest = name;  // list is sorted
  }
  ASSERT_FALSE(newest.empty());
  const std::string data = sim.read(newest);
  sim.remove(newest);
  sim.create(newest);
  std::string mangled = data;
  mangled[mangled.size() / 2] ^= 0x10;
  sim.append(newest, mangled);

  const auto img = sim.materialize({sim.op_count(), CrashFault::kClean, 0});
  const RecoveredMonitor rec = recover_monitor(*img, 4, options_for(4));
  EXPECT_EQ(rec.report.snapshots_rejected, 1u);
  EXPECT_EQ(rec.monitor->state_digest(), want);
}

TEST(Wal, FileStorageRoundTripsOnRealFiles) {
  const std::vector<Event> stream = small_stream(3, 8);
  const std::string root =
      ::testing::TempDir() + "ct_wal_test_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  FileStorage files(root);
  MonitoringEntity monitor(3, options_for(3));
  WalOptions wo;
  wo.policy = SyncPolicy::kEveryN;
  wo.sync_every = 3;
  DurableLog log(files, wo);
  monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
  for (const Event& e : stream) monitor.ingest(e);
  log.checkpoint(monitor);

  const RecoveredMonitor rec = recover_monitor(files, 3, options_for(3));
  EXPECT_FALSE(rec.report.truncated) << rec.report.truncate_detail;
  EXPECT_EQ(rec.monitor->state_digest(), monitor.state_digest());
  for (const std::string& name : files.list()) files.remove(name);
}

// ---------------------------------------------------------------------------
// Recovery idempotency (crash → recover → re-feed the overlapping tail)
// ---------------------------------------------------------------------------

TEST(Recovery, RefeedingTheOverlappingTailConvergesAcrossStrategies) {
  std::uint32_t pc = 0;
  const std::vector<Event> stream = schedule_stream(1234, &pc);
  ASSERT_GT(stream.size(), 50u);

  struct Strategy {
    const char* name;
    MonitorOptions options;
  };
  std::vector<Strategy> strategies;
  {
    MonitorOptions fm;
    fm.backend = TimestampBackend::kPrecomputedFm;
    fm.cluster.fm_vector_width = pc;
    strategies.push_back({"precomputed-fm", fm});
    MonitorOptions first = options_for(pc);
    first.nth_threshold = -1.0;  // merge-on-1st
    strategies.push_back({"merge-1st", first});
    MonitorOptions nth = options_for(pc);
    nth.nth_threshold = 4.0;
    strategies.push_back({"merge-nth/arena", nth});
    MonitorOptions plain = options_for(pc);
    plain.nth_threshold = 10.0;
    plain.cluster.use_arena = false;
    strategies.push_back({"merge-nth/plain", plain});
  }

  for (const Strategy& s : strategies) {
    SCOPED_TRACE(s.name);
    // Reference: the whole stream, no crash.
    MonitoringEntity reference(pc, s.options);
    for (const Event& e : stream) reference.ingest(e);

    // Crashed run: half the stream, lost un-synced suffix, recover.
    SimulatedStorage sim;
    WalOptions wo;
    wo.policy = SyncPolicy::kEveryN;
    wo.sync_every = 6;
    {
      MonitoringEntity monitor(pc, s.options);
      DurableLog log(sim, wo);
      monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
      for (std::size_t i = 0; i < stream.size() / 2; ++i) {
        monitor.ingest(stream[i]);
      }
      // Crash without a final sync.
    }
    const auto img =
        sim.materialize({sim.op_count(), CrashFault::kLostSuffix, 9});
    RecoveredMonitor rec = recover_monitor(*img, pc, s.options);
    EXPECT_TRUE(rec.monitor->health().accounted());

    // Re-feed with overlap: from well before the crash point through the
    // end. Records already recovered drop as duplicates; lost ones land.
    const std::size_t resume = stream.size() / 4;
    for (std::size_t i = resume; i < stream.size(); ++i) {
      rec.monitor->ingest(stream[i]);
    }
    EXPECT_EQ(rec.monitor->state_digest(), reference.state_digest());
    EXPECT_EQ(rec.monitor->delivery_log().size(),
              reference.delivery_log().size());
    EXPECT_TRUE(rec.monitor->health().accounted());
  }
}

TEST(Recovery, RecoverRefeedRecoverIsIdempotent) {
  const std::vector<Event> stream = small_stream(5, 20);
  SimulatedStorage sim;
  WalOptions wo;
  wo.policy = SyncPolicy::kEveryN;
  wo.sync_every = 5;
  {
    MonitoringEntity monitor(5, options_for(5));
    DurableLog log(sim, wo);
    monitor.set_delivery_tap([&log](const Event& e) { log.append(e); });
    for (std::size_t i = 0; i < stream.size() / 2; ++i) {
      monitor.ingest(stream[i]);
    }
  }
  // First crash + recovery, resume logging, feed the rest, crash again.
  auto img1 = sim.materialize({sim.op_count(), CrashFault::kLostSuffix, 1});
  RecoveredMonitor rec1 = recover_monitor(*img1, 5, options_for(5));
  {
    DurableLog log(*img1, wo, rec1.report.recovered_seq);
    rec1.monitor->set_delivery_tap(
        [&log](const Event& e) { log.append(e); });
    for (std::size_t i = stream.size() / 4; i < stream.size(); ++i) {
      rec1.monitor->ingest(stream[i]);
    }
    log.sync();
  }
  const auto img2 =
      img1->materialize({img1->op_count(), CrashFault::kClean, 0});
  const RecoveredMonitor rec2 = recover_monitor(*img2, 5, options_for(5));
  EXPECT_FALSE(rec2.report.truncated) << rec2.report.truncate_detail;

  MonitoringEntity reference(5, options_for(5));
  for (const Event& e : stream) reference.ingest(e);
  EXPECT_EQ(rec2.monitor->state_digest(), reference.state_digest());
}

// ---------------------------------------------------------------------------
// Crash sweep harness
// ---------------------------------------------------------------------------

TEST(CrashSweep, PassesOnGeneratedSchedules) {
  CrashSweepParams params;
  params.policy = SyncPolicy::kEveryN;
  params.sync_every = 8;
  params.torn_samples = 8;
  params.short_samples = 4;
  params.rot_samples = 2;
  params.stale_samples = 1;
  for (const std::uint64_t seed : {7ull, 21ull}) {
    const SimSchedule schedule = generate_schedule(seed);
    const CrashSweepReport report = run_crash_sweep(schedule, params);
    ASSERT_TRUE(report.ok())
        << "seed " << seed << " cut " << report.divergence->op_index << " ["
        << report.divergence->config << "]: " << report.divergence->detail;
    EXPECT_GT(report.sync_boundary_points, 0u);
    EXPECT_GT(report.torn_points, 0u);
    EXPECT_GT(report.checks, 0u);
  }
}

TEST(CrashSweep, EveryRecordPolicyHoldsItsGuarantee) {
  CrashSweepParams params;
  params.policy = SyncPolicy::kEveryRecord;
  params.torn_samples = 6;
  params.short_samples = 3;
  const SimSchedule schedule = generate_schedule(3);
  const CrashSweepReport report = run_crash_sweep(schedule, params);
  ASSERT_TRUE(report.ok())
      << report.divergence->config << ": " << report.divergence->detail;
}

TEST(CrashSweep, OnCheckpointPolicySurvivesCheckpointCrashes) {
  CrashSweepParams params;
  params.policy = SyncPolicy::kOnCheckpoint;
  params.torn_samples = 6;
  const SimSchedule schedule = generate_schedule(5);
  const CrashSweepReport report = run_crash_sweep(schedule, params);
  ASSERT_TRUE(report.ok())
      << report.divergence->config << ": " << report.divergence->detail;
}

}  // namespace
}  // namespace ct

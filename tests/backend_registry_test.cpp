// Tests for the pluggable causality-backend registry
// (timestamp/causality_backend.hpp) and the registry-built broker chain:
// built-in factories and capability descriptors, chain enumeration through
// QueryBroker::link(), BrokerHealth accounting identical between the
// default chain and the same chain named explicitly (the pre-refactor
// hard-coded behaviour), and the tree-clock link serving real answers when
// spliced into an extended chain.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "model/oracle.hpp"
#include "monitor/monitor.hpp"
#include "monitor/query_broker.hpp"
#include "timestamp/causality_backend.hpp"
#include "timestamp/query_cost.hpp"
#include "trace/generators.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace ct {
namespace {

Trace registry_trace() {
  return generate_tiered_service({.clients = 6,
                                  .frontends = 2,
                                  .app_servers = 2,
                                  .databases = 2,
                                  .requests = 40,
                                  .seed = 77});
}

MonitorOptions monitor_options(const Trace& t) {
  MonitorOptions options;
  options.backend = TimestampBackend::kClusterDynamic;
  options.cluster.max_cluster_size = 4;
  options.cluster.fm_vector_width = t.process_count();
  return options;
}

void feed(MonitoringEntity& monitor, const Trace& t) {
  for (const EventId id : t.delivery_order()) monitor.ingest(t.event(id));
}

TEST(BackendRegistry, BuiltInsAreRegisteredWithExpectedCapabilities) {
  BackendRegistry& reg = BackendRegistry::instance();
  const std::vector<ServingBackend> expected = {
      ServingBackend::kCluster, ServingBackend::kDifferential,
      ServingBackend::kOnDemandFm, ServingBackend::kTreeClock};
  for (const ServingBackend b : expected) {
    EXPECT_TRUE(reg.registered(b)) << to_string(b);
  }
  const std::vector<ServingBackend> ids = reg.registered_ids();
  EXPECT_EQ(ids, expected);  // ascending id order, nothing else registered

  const Trace t = registry_trace();
  BackendContext ctx;
  ctx.trace = &t;

  const auto differential = reg.make(ServingBackend::kDifferential, ctx);
  EXPECT_EQ(differential->id(), ServingBackend::kDifferential);
  EXPECT_TRUE(differential->capabilities().supports_frontier);
  EXPECT_FALSE(differential->capabilities().supports_batch);
  EXPECT_EQ(differential->capabilities().rebuild_cost,
            RebuildCost::kFullReplay);

  const auto ondemand = reg.make(ServingBackend::kOnDemandFm, ctx);
  EXPECT_EQ(ondemand->id(), ServingBackend::kOnDemandFm);
  EXPECT_TRUE(ondemand->capabilities().concurrent_reads);
  EXPECT_EQ(ondemand->capabilities().rebuild_cost, RebuildCost::kNone);

  const auto tree = reg.make(ServingBackend::kTreeClock, ctx);
  EXPECT_EQ(tree->id(), ServingBackend::kTreeClock);
  EXPECT_TRUE(tree->capabilities().supports_frontier);
  EXPECT_TRUE(tree->capabilities().concurrent_reads);
  EXPECT_EQ(tree->capabilities().rebuild_cost, RebuildCost::kFullReplay);

  // The cluster link is monitor-coupled: without the hook it cannot build.
  EXPECT_THROW((void)reg.make(ServingBackend::kCluster, ctx), CheckFailure);
  ctx.monitor_precedes = [](EventId, EventId,
                            QueryCost&) -> std::optional<bool> {
    return false;
  };
  const auto cluster = reg.make(ServingBackend::kCluster, ctx);
  EXPECT_EQ(cluster->id(), ServingBackend::kCluster);
  EXPECT_TRUE(cluster->capabilities().supports_batch);
  EXPECT_EQ(cluster->capabilities().rebuild_cost, RebuildCost::kIncremental);
}

TEST(BackendRegistry, RejectsNonChainIdsAndHonorsCustomFactories) {
  BackendRegistry& reg = BackendRegistry::instance();
  EXPECT_THROW(reg.register_backend(ServingBackend::kNone, nullptr),
               CheckFailure);
  EXPECT_THROW(reg.register_backend(ServingBackend::kCache, nullptr),
               CheckFailure);
  EXPECT_FALSE(reg.registered(ServingBackend::kNone));
  EXPECT_FALSE(reg.registered(ServingBackend::kCache));
}

TEST(QueryBroker, ChainIsEnumerableThroughTheRegistry) {
  const Trace t = registry_trace();
  MonitoringEntity monitor(t.process_count(), monitor_options(t));
  feed(monitor, t);
  ThreadPool pool(2);
  QueryBroker broker(monitor, pool);

  ASSERT_EQ(broker.chain_length(), broker.options().chain.size());
  for (std::size_t i = 0; i < broker.chain_length(); ++i) {
    const CausalityBackend& link = broker.link(i);
    EXPECT_EQ(link.id(), broker.options().chain[i]);
    EXPECT_TRUE(BackendRegistry::instance().registered(link.id()));
    EXPECT_TRUE(link.capabilities().supports_frontier)
        << link.name() << ": every chain link must serve frontiers";
  }
  // Default chain is the pre-refactor hard-coded order.
  ASSERT_EQ(broker.chain_length(), 3u);
  EXPECT_EQ(broker.link(0).id(), ServingBackend::kCluster);
  EXPECT_EQ(broker.link(1).id(), ServingBackend::kDifferential);
  EXPECT_EQ(broker.link(2).id(), ServingBackend::kOnDemandFm);
}

/// Runs one deterministic scripted load (sequential: drain after every
/// submit so scheduling noise cannot touch the counters) and returns the
/// final health block.
BrokerHealth run_scripted_load(QueryBroker& broker, const Trace& t) {
  const std::vector<EventId> events = {t.delivery_order().begin(),
                                       t.delivery_order().end()};
  Prng rng(99);
  auto one = [&](std::future<QueryResult> fut) {
    broker.drain();
    return fut.get();
  };
  for (int i = 0; i < 60; ++i) {
    const EventId e = rng.pick(events);
    const EventId f = rng.pick(events);
    (void)one(broker.submit_precedence(e, f));
    if (i % 3 == 0) (void)one(broker.submit_precedence(e, f));  // cache hit
    if (i == 20) broker.trip_backend(ServingBackend::kCluster);
    if (i == 35) broker.trip_backend(ServingBackend::kDifferential);
    if (i == 45) {
      broker.readmit_backend(ServingBackend::kCluster);
      broker.readmit_backend(ServingBackend::kDifferential);
    }
    if (i % 10 == 0) (void)one(broker.submit_frontier(e));
    if (i % 15 == 0) {
      std::vector<std::pair<EventId, EventId>> pairs;
      for (int j = 0; j < 4; ++j) pairs.emplace_back(rng.pick(events), f);
      (void)one(broker.submit_batch(std::move(pairs)));
    }
    if (i % 7 == 0) (void)one(broker.submit_precedence(e, f, 3));  // deadline
  }
  broker.drain();
  return broker.health();
}

// Satellite 4: the registry-built default chain accounts EXACTLY like the
// pre-refactor hard-coded chain. The explicit chain below names the same
// links the old broker hard-coded; every BrokerHealth field must agree
// with the default-constructed chain under an identical scripted load,
// including trips, readmissions, cache hits, and deadline expiries.
TEST(QueryBroker, ExplicitDefaultChainAccountsIdenticallyToDefault) {
  const Trace t = registry_trace();
  MonitoringEntity monitor_a(t.process_count(), monitor_options(t));
  MonitoringEntity monitor_b(t.process_count(), monitor_options(t));
  feed(monitor_a, t);
  feed(monitor_b, t);
  ThreadPool pool(1);

  BrokerOptions defaults;  // chain = default_broker_chain()
  BrokerOptions explicit_chain;
  explicit_chain.chain.clear();
  explicit_chain.chain.push_back(ServingBackend::kCluster);
  explicit_chain.chain.push_back(ServingBackend::kDifferential);
  explicit_chain.chain.push_back(ServingBackend::kOnDemandFm);

  QueryBroker a(monitor_a, pool, defaults);
  QueryBroker b(monitor_b, pool, explicit_chain);
  const BrokerHealth ha = run_scripted_load(a, t);
  const BrokerHealth hb = run_scripted_load(b, t);

  EXPECT_TRUE(ha.accounted());
  EXPECT_TRUE(hb.accounted());
  EXPECT_EQ(ha.submitted, hb.submitted);
  EXPECT_EQ(ha.completed, hb.completed);
  EXPECT_EQ(ha.deadline_expired, hb.deadline_expired);
  EXPECT_EQ(ha.shed, hb.shed);
  EXPECT_EQ(ha.failed, hb.failed);
  EXPECT_EQ(ha.in_flight, hb.in_flight);
  EXPECT_EQ(ha.answered, hb.answered);
  EXPECT_EQ(ha.unknown, hb.unknown);
  EXPECT_EQ(ha.cache_hits, hb.cache_hits);
  EXPECT_EQ(ha.fallback_answers, hb.fallback_answers);
  EXPECT_EQ(ha.breaker_trips, hb.breaker_trips);
  EXPECT_EQ(ha.readmissions, hb.readmissions);
  EXPECT_EQ(ha.total_ticks, hb.total_ticks);
  EXPECT_GT(ha.fallback_answers, 0u);  // the trips forced real fallbacks
}

// The tree-clock link, spliced in behind the cluster primary, serves exact
// answers once the primary trips — and the result is attributed to it.
TEST(QueryBroker, TreeClockLinkServesWhenPrimaryTripped) {
  const Trace t = registry_trace();
  MonitoringEntity monitor(t.process_count(), monitor_options(t));
  feed(monitor, t);
  const CausalityOracle oracle(t);
  ThreadPool pool(2);

  BrokerOptions options;
  options.answer_cache_capacity = 0;  // attribute every answer to its link
  options.chain.clear();
  options.chain.push_back(ServingBackend::kCluster);
  options.chain.push_back(ServingBackend::kTreeClock);
  options.chain.push_back(ServingBackend::kDifferential);
  options.chain.push_back(ServingBackend::kOnDemandFm);
  QueryBroker broker(monitor, pool, options);
  ASSERT_EQ(broker.chain_length(), 4u);
  EXPECT_EQ(broker.link(1).id(), ServingBackend::kTreeClock);

  broker.trip_backend(ServingBackend::kCluster);
  EXPECT_TRUE(broker.backend_open(ServingBackend::kCluster));
  EXPECT_FALSE(broker.backend_open(ServingBackend::kTreeClock));

  const std::vector<EventId> events = {t.delivery_order().begin(),
                                       t.delivery_order().end()};
  Prng rng(5);
  std::uint64_t tree_served = 0;
  for (int i = 0; i < 120; ++i) {
    const EventId e = rng.pick(events);
    const EventId f = rng.pick(events);
    auto fut = broker.submit_precedence(e, f);
    broker.drain();
    const QueryResult r = fut.get();
    ASSERT_EQ(r.outcome, QueryOutcome::kAnswered);
    ASSERT_TRUE(r.answer.has_value());
    ASSERT_EQ(*r.answer, oracle.happened_before(e, f));
    ASSERT_EQ(r.backend_used, ServingBackend::kTreeClock);
    ++tree_served;
  }
  const BrokerHealth h = broker.health();
  EXPECT_TRUE(h.accounted());
  EXPECT_EQ(h.fallback_answers, tree_served);

  // Frontier queries ride the same link.
  auto fut = broker.submit_frontier(events[events.size() / 2]);
  broker.drain();
  const QueryResult r = fut.get();
  ASSERT_EQ(r.outcome, QueryOutcome::kAnswered);
  EXPECT_EQ(r.backend_used, ServingBackend::kTreeClock);
  ASSERT_TRUE(r.frontiers.has_value());
}

TEST(QueryBroker, DuplicateOrEmptyChainIsRejected) {
  const Trace t = registry_trace();
  MonitoringEntity monitor(t.process_count(), monitor_options(t));
  feed(monitor, t);
  ThreadPool pool(1);

  BrokerOptions empty;
  empty.chain.clear();
  EXPECT_THROW((QueryBroker{monitor, pool, empty}), CheckFailure);

  BrokerOptions dup;
  dup.chain.clear();
  dup.chain.push_back(ServingBackend::kOnDemandFm);
  dup.chain.push_back(ServingBackend::kOnDemandFm);
  EXPECT_THROW((QueryBroker{monitor, pool, dup}), CheckFailure);
}

}  // namespace
}  // namespace ct

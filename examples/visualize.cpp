// Visualize: ASCII space-time diagram with Fidge/Mattern and cluster
// timestamps — a terminal rendition of the paper's Figure 2.
//
// Reconstructs the exact computation of Figure 2 (processes P1..P3), prints
// each event with its vector timestamp, then shows what the cluster
// timestamp stores instead, per clustering outcome.
//
// Run:  ./build/examples/visualize            (the Figure-2 computation)
//       ./build/examples/visualize --ring     (a 6-process ring instead)
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "model/trace_builder.hpp"
#include "timestamp/fm_store.hpp"
#include "trace/generators.hpp"
#include "util/cli.hpp"

namespace {

using namespace ct;

Trace figure2() {
  TraceBuilder b;
  b.add_processes(3);
  const EventId a = b.send(0);   // A
  b.receive(1, a);               // D
  const EventId bb = b.send(0);  // B
  b.receive(2, bb);              // G
  const EventId e = b.send(1);   // E
  b.receive(0, e);               // C
  const EventId h = b.send(2);   // H
  b.receive(1, h);               // F
  b.unary(2);                    // I
  return b.build("figure-2", TraceFamily::kControl);
}

std::string clock_string(const FmClock& clock) {
  std::string s = "(";
  for (std::size_t i = 0; i < clock.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(clock[i]);
  }
  return s + ")";
}

std::string cluster_ts_string(const ClusterTimestamp& ts) {
  if (ts.is_full()) {
    std::string s = "FULL(";
    for (std::size_t i = 0; i < ts.values.size(); ++i) {
      if (i) s += ',';
      s += std::to_string(ts.values[i]);
    }
    return s + ")";
  }
  std::string s = "{";
  for (std::size_t i = 0; i < ts.covered->size(); ++i) {
    if (i) s += ' ';
    s += 'P' + std::to_string((*ts.covered)[i]) + ':' +
         std::to_string(ts.values[i]);
  }
  return s + "}";
}

void draw(const Trace& trace, std::size_t max_cs) {
  const FmStore fm(trace);
  ClusterEngineConfig config;
  config.max_cluster_size = max_cs;
  config.fm_vector_width =
      std::max<std::size_t>(trace.process_count(), max_cs);
  ClusterTimestampEngine engine(trace.process_count(), config,
                                make_merge_on_first());
  engine.observe_trace(trace);

  std::printf("space-time diagram of '%s' (%zu processes, %zu events)\n\n",
              trace.name().c_str(), trace.process_count(),
              trace.event_count());
  for (ProcessId p = 0; p < trace.process_count(); ++p) {
    std::printf("P%u:", p);
    for (const Event& e : trace.process_events(p)) {
      std::string marker;
      switch (e.kind) {
        case EventKind::kSend:
          marker = "s->P" + std::to_string(e.partner.process);
          break;
        case EventKind::kReceive:
          marker = "r<-P" + std::to_string(e.partner.process);
          break;
        case EventKind::kSync:
          marker = "Y~P" + std::to_string(e.partner.process);
          break;
        case EventKind::kUnary:
          marker = "u";
          break;
      }
      std::printf("  [%u:%s %s]", e.id.index, marker.c_str(),
                  clock_string(fm.clock(e.id)).c_str());
    }
    std::printf("\n");
  }

  std::printf("\ncluster timestamps at maxCS=%zu (merge-on-1st):\n",
              max_cs);
  for (ProcessId p = 0; p < trace.process_count(); ++p) {
    std::printf("P%u:", p);
    for (const Event& e : trace.process_events(p)) {
      std::printf("  [%u: %s]", e.id.index,
                  cluster_ts_string(engine.timestamp(e.id)).c_str());
    }
    std::printf("\n");
  }
  const auto stats = engine.stats();
  std::printf(
      "\n%zu of %zu events kept a full vector (cluster receives); "
      "clusters formed: %zu\n",
      stats.cluster_receives, stats.events, stats.final_clusters);
}

}  // namespace

int main(int argc, char** argv) {
  const ct::CliArgs args(argc, argv);
  if (args.get_bool_or("ring", false)) {
    draw(ct::generate_ring({.processes = 6, .iterations = 2, .seed = 1}),
         args.get_int_or("maxcs", 3) > 0
             ? static_cast<std::size_t>(args.get_int_or("maxcs", 3))
             : 3);
  } else {
    std::printf("reproducing the paper's Figure 2:\n\n");
    draw(figure2(), 2);
  }
  return 0;
}

// ctsnap: inspect and verify CTC1 columnar snapshot files (src/store/).
//
// Subcommands:
//   info   FILE          dump the footer manifest (generation, WAL position,
//                        options, column table with per-column bytes/event)
//   verify FILE          recompute every block CRC32C and per-column FNV
//                        digest, then run the structural verifier; exit 1 on
//                        the first mismatch, with its byte offset
//   ls     DIR [--ns P]  list published generations and leftover tmps of a
//                        FileStorage directory
//
// Examples:
//   ./build/examples/ctsnap info  /var/ct/ctc-12.col
//   ./build/examples/ctsnap verify /var/ct/ctc-12.col
//   ./build/examples/ctsnap ls /var/ct --ns tenant-3.
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "durability/storage.hpp"
#include "store/format.hpp"
#include "store/mapped_view.hpp"
#include "store/snapshot_store.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

using namespace ct;

int usage() {
  std::puts(
      "usage: ctsnap <info|verify|ls> ...\n"
      "  info   FILE      dump the CTC1 footer manifest\n"
      "  verify FILE      recheck block CRCs, digests, and structure\n"
      "  ls     DIR [--ns PREFIX]  list generations in a storage directory");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CT_CHECK_MSG(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

const char* backend_name(TimestampBackend b) {
  switch (b) {
    case TimestampBackend::kPrecomputedFm: return "precomputed-fm";
    case TimestampBackend::kClusterDynamic: return "cluster-dynamic";
    default: return "other";
  }
}

int cmd_info(const std::string& path) {
  const std::string bytes = read_file(path);
  const ColumnarManifest m = parse_columnar_manifest(bytes);
  std::printf("file           %s (%zu bytes)\n", path.c_str(), bytes.size());
  std::printf("format         CTC1 v%u, %s\n", unsigned{m.version},
              m.has_arena ? "event + arena columns" : "event columns only");
  std::printf("generation     %" PRIu64 "\n", m.generation);
  std::printf("wal position   %" PRIu64 " delivered records\n",
              m.wal_position);
  std::printf("processes      %" PRIu64 "\n", m.process_count);
  std::printf("events         %" PRIu64 "\n", m.event_count);
  if (m.has_arena) {
    std::printf("arena          %" PRIu64 " pool words, %" PRIu64
                " covered sets\n",
                m.pool_words, m.covered_set_count);
  }
  std::printf("options        backend=%s nth=%g max-cluster=%zu arena=%d\n",
              backend_name(m.options.backend), m.options.nth_threshold,
              m.options.cluster.max_cluster_size,
              int{m.options.cluster.use_arena});
  std::printf("state digest   %016" PRIx64 "\n", m.state_digest);
  std::printf("crc blocks     %" PRIu64 " bytes each\n", m.block_bytes);
  std::printf("footer         at byte %" PRIu64 " (%zu bytes)\n",
              m.footer_offset, bytes.size() - m.footer_offset);
  std::printf("\n%-18s %10s %12s %12s  %s\n", "column", "elem", "bytes",
              "blocks", "bytes/event");
  const double events =
      m.event_count == 0 ? 1.0 : static_cast<double>(m.event_count);
  std::uint64_t total = 0;
  for (const ColumnInfo& c : m.columns) {
    total += c.bytes;
    std::printf("%-18s %10" PRIu64 " %12" PRIu64 " %12zu  %10.2f\n",
                to_string(c.id), c.element_count, c.bytes,
                c.block_crcs.size(), static_cast<double>(c.bytes) / events);
  }
  std::printf("%-18s %10s %12" PRIu64 " %12s  %10.2f\n", "total", "", total,
              "", static_cast<double>(total) / events);
  return 0;
}

int cmd_verify(const std::string& path) {
  std::string bytes = read_file(path);
  const ColumnarManifest m = parse_columnar_manifest(bytes);
  verify_columnar_blocks(bytes, m);
  verify_columnar_digests(bytes, m);
  std::size_t blocks = 0;
  for (const ColumnInfo& c : m.columns) blocks += c.block_crcs.size();
  std::printf("checksums      OK: %zu block CRCs, %zu column digests\n",
              blocks, m.columns.size());
  MappedSnapshot snap(ColdBytes::from_string(std::move(bytes)));
  snap.verify_structure();
  std::printf("structure      OK: %" PRIu64 " events over %" PRIu64
              " processes%s\n",
              m.event_count, m.process_count,
              m.has_arena ? ", arena consistent" : "");
  std::printf("generation %" PRIu64 " verified\n", m.generation);
  return 0;
}

int cmd_ls(const std::string& dir, const std::string& ns) {
  CT_CHECK_MSG(std::filesystem::is_directory(dir),
               dir + " is not a directory");
  FileStorage storage(dir);
  for (const auto& [gen, name] : list_columnar(storage, ns)) {
    const std::string bytes = storage.read(name);
    std::string note;
    try {
      const ColumnarManifest m = parse_columnar_manifest(bytes);
      std::ostringstream os;
      os << m.event_count << " events, wal@" << m.wal_position;
      note = os.str();
    } catch (const CheckFailure& e) {
      note = std::string("INVALID: ") + e.what();
    }
    std::printf("gen %-6" PRIu64 " %-24s %10zu bytes  %s\n", gen,
                name.c_str(), bytes.size(), note.c_str());
  }
  for (const std::string& tmp : list_columnar_tmps(storage, ns)) {
    std::printf("tmp        %-24s %10zu bytes  half-published, quarantined\n",
                tmp.c_str(), storage.read(tmp).size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    ct::CliArgs args(argc, argv);
    if (args.positional().empty()) return usage();
    const std::string& cmd = args.positional()[0];
    if ((cmd == "info" || cmd == "verify") && args.positional().size() == 2) {
      return cmd == "info" ? cmd_info(args.positional()[1])
                           : cmd_verify(args.positional()[1]);
    }
    if (cmd == "ls" && args.positional().size() == 2) {
      return cmd_ls(args.positional()[1], args.get_or("ns", ""));
    }
    return usage();
  } catch (const ct::CheckFailure& e) {
    std::fprintf(stderr, "ctsnap: %s\n", e.what());
    return 1;
  }
}

// Quickstart: build a small parallel computation, timestamp it with
// self-organizing cluster timestamps, and answer precedence queries.
//
// This walks the public API end to end:
//   1. describe a computation with TraceBuilder (or generate / load one);
//   2. feed it to a ClusterTimestampEngine (one pass, delivery order);
//   3. query precedence and inspect the space saving vs Fidge/Mattern.
//
// Run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "model/trace_builder.hpp"
#include "timestamp/fm_store.hpp"

int main() {
  using namespace ct;

  // -- 1. Describe a computation ------------------------------------------
  // Four processes: 0 and 1 chat constantly (a tight pair), 2 and 3 chat
  // constantly, and one lonely message crosses between the groups.
  TraceBuilder builder;
  builder.add_processes(4);
  EventId cross_send = kNoEvent;
  for (int round = 0; round < 10; ++round) {
    builder.message(0, 1);
    builder.message(2, 3);
    builder.unary(1);
    builder.message(1, 0);
    builder.message(3, 2);
    if (round == 5) cross_send = builder.send(0);
  }
  const EventId cross_recv = builder.receive(3, cross_send);
  const Trace trace = builder.build("quickstart", TraceFamily::kControl);
  std::printf("computation: %zu processes, %zu events, %zu messages\n",
              trace.process_count(), trace.event_count(),
              trace.communication_occurrences());

  // -- 2. Timestamp it ------------------------------------------------------
  // Dynamic mode: clusters start as singletons and self-organize using
  // merge-on-Nth-communication. maxCS bounds cluster size; the FM encoding
  // width models the observation tool's fixed-size vectors (§4 of the
  // paper; we use the process count here since the computation is tiny).
  ClusterEngineConfig config;
  config.max_cluster_size = 2;
  config.fm_vector_width = 4;
  ClusterTimestampEngine engine(trace.process_count(), config,
                                make_merge_on_first());
  engine.observe_trace(trace);

  // -- 3. Query it ----------------------------------------------------------
  const Event& first_msg = trace.event(EventId{0, 1});
  const Event& cross = trace.event(cross_recv);
  const Event& p0_last =
      trace.event(EventId{0, trace.process_size(0)});
  const Event& p2_last =
      trace.event(EventId{2, trace.process_size(2)});
  std::printf("\nprecedence queries:\n");
  std::printf("  P0.1 -> cross-recv? %s  (the path through the message)\n",
              engine.precedes(first_msg, cross) ? "yes" : "no");
  std::printf("  P0.last -> P2.last? %s  (no causal path between groups)\n",
              engine.precedes(p0_last, p2_last) ? "yes" : "no");
  std::printf("  cross-recv -> P0.1? %s  (precedence is not symmetric)\n",
              engine.precedes(cross, first_msg) ? "yes" : "no");

  // -- 4. Inspect the clustering and the saving -----------------------------
  const auto stats = engine.stats();
  std::printf("\nself-organized clusters: %zu (largest %zu)\n",
              stats.final_clusters, stats.largest_cluster);
  std::printf("cluster receives (full vectors kept): %zu of %zu events\n",
              stats.cluster_receives, stats.events);

  const FmStore fm(trace);  // the "store everything" baseline
  std::printf("storage: cluster %llu words vs Fidge/Mattern %zu words "
              "(ratio %.2f)\n",
              static_cast<unsigned long long>(stats.encoded_words),
              fm.stored_elements(),
              stats.average_ratio(config.fm_vector_width));

  // Every answer above is identical to what the full FM store gives:
  bool agree = true;
  for (const EventId e : trace.delivery_order()) {
    for (const EventId f : trace.delivery_order()) {
      agree = agree && engine.precedes(trace.event(e), trace.event(f)) ==
                           fm.precedes(e, f);
    }
  }
  std::printf("all %zu^2 precedence answers match Fidge/Mattern: %s\n",
              trace.event_count(), agree ? "yes" : "NO (bug!)");
  return agree ? 0 : 1;
}

// trace_tool: generate, inspect, and evaluate trace files.
//
// Subcommands:
//   gen  --kind <name> --out <path> [generator flags]   synthesize a trace
//   info --in <path>                                    summarize a trace
//   eval --in <path> [--maxcs N] [--threshold T]        timestamp-size report
//   suite --list                                        list the 54-entry suite
//   suite --dump <dir>                                  write every suite trace
//
// Examples:
//   ./build/examples/trace_tool gen --kind web --clients 40 --out /tmp/w.trace
//   ./build/examples/trace_tool info --in /tmp/w.trace
//   ./build/examples/trace_tool eval --in /tmp/w.trace --maxcs 13
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>

#include "cluster/comm_matrix.hpp"
#include "core/static_pipeline.hpp"
#include "eval/experiment.hpp"
#include "trace/generators.hpp"
#include "trace/suite.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"

namespace {

using namespace ct;

int usage() {
  std::puts(
      "usage: trace_tool <gen|info|eval|suite> [flags]\n"
      "  gen   --kind ring|halo1d|halo2d|scatter|web|tiered|pubsub|rpc|chain|\n"
      "               uniform|locality  --out FILE  [--processes N] [--seed S]\n"
      "  info  --in FILE\n"
      "  eval  --in FILE [--maxcs N] [--threshold T] [--fm-width W]\n"
      "  suite --list | --dump DIR");
  return 2;
}

Trace generate(const std::string& kind, std::size_t n, std::uint64_t seed) {
  if (kind == "ring") return generate_ring({.processes = n, .seed = seed});
  if (kind == "halo1d") return generate_halo1d({.processes = n, .seed = seed});
  if (kind == "halo2d") {
    const auto side = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
    Halo2dOptions opt;
    opt.width = side;
    opt.height = side;
    opt.seed = seed;
    return generate_halo2d(opt);
  }
  if (kind == "scatter") {
    return generate_scatter_gather({.processes = n, .seed = seed});
  }
  if (kind == "web") {
    return generate_web_server(
        {.clients = n > 12 ? n - 12 : 8, .seed = seed});
  }
  if (kind == "tiered") return generate_tiered_service({.seed = seed});
  if (kind == "pubsub") return generate_pubsub({.seed = seed});
  if (kind == "rpc") return generate_rpc_business({.seed = seed});
  if (kind == "chain") {
    return generate_rpc_chain({.services = n, .seed = seed});
  }
  if (kind == "uniform") {
    return generate_uniform_random({.processes = n, .seed = seed});
  }
  if (kind == "locality") {
    return generate_locality_random({.processes = n, .seed = seed});
  }
  CT_CHECK_MSG(false, "unknown generator kind '" << kind << "'");
  return {};
}

void print_info(const Trace& t) {
  std::printf("name:      %s\n", t.name().c_str());
  std::printf("family:    %s\n", to_string(t.family()));
  std::printf("processes: %zu\n", t.process_count());
  std::printf("events:    %zu  (unary %zu, send %zu, receive %zu, sync %zu)\n",
              t.event_count(), t.count(EventKind::kUnary),
              t.count(EventKind::kSend), t.count(EventKind::kReceive),
              t.count(EventKind::kSync));
  std::printf("communication occurrences: %zu\n",
              t.communication_occurrences());
  // Degree statistics of the communication graph.
  const CommMatrix comm(t);
  std::size_t max_partners = 0;
  double mean_partners = 0;
  for (ProcessId p = 0; p < t.process_count(); ++p) {
    std::size_t partners = 0;
    for (ProcessId q = 0; q < t.process_count(); ++q) {
      partners += comm.occurrences(p, q) > 0;
    }
    max_partners = std::max(max_partners, partners);
    mean_partners += static_cast<double>(partners);
  }
  mean_partners /= static_cast<double>(t.process_count());
  std::printf("communication partners per process: mean %.1f, max %zu\n",
              mean_partners, max_partners);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.positional().empty()) return usage();
  const std::string& cmd = args.positional().front();

  if (cmd == "gen") {
    const auto kind = args.get("kind");
    const auto out = args.get("out");
    if (!kind || !out) return usage();
    const Trace t =
        generate(*kind,
                 static_cast<std::size_t>(args.get_int_or("processes", 64)),
                 static_cast<std::uint64_t>(args.get_int_or("seed", 1)));
    save_trace(*out, t);
    std::printf("wrote %s: %zu processes, %zu events\n", out->c_str(),
                t.process_count(), t.event_count());
    return 0;
  }

  if (cmd == "info") {
    const auto in = args.get("in");
    if (!in) return usage();
    print_info(load_trace(*in));
    return 0;
  }

  if (cmd == "eval") {
    const auto in = args.get("in");
    if (!in) return usage();
    const Trace t = load_trace(*in);
    const auto maxcs =
        static_cast<std::size_t>(args.get_int_or("maxcs", 13));
    const double threshold = args.get_double_or("threshold", 10.0);
    const auto width =
        static_cast<std::size_t>(args.get_int_or("fm-width", 300));
    print_info(t);
    std::printf("\ntimestamp-size ratios at maxCS=%zu (FM width %zu):\n",
                maxcs, width);
    std::printf("  static greedy:        %.4f\n",
                run_static(t, StaticStrategy::kGreedy, maxcs, width).ratio);
    std::printf("  merge-on-1st:         %.4f\n",
                run_dynamic(t, -1.0, maxcs, width).ratio);
    std::printf("  merge-on-Nth (CR>%g): %.4f\n", threshold,
                run_dynamic(t, threshold, maxcs, width).ratio);
    std::printf("  Fidge/Mattern:        1.0000\n");
    return 0;
  }

  if (cmd == "suite") {
    if (args.get_bool_or("list", false)) {
      for (const auto& entry : standard_suite()) {
        const Trace t = entry.make();
        std::printf("%-28s %-8s %4zu procs %7zu events\n", entry.id.c_str(),
                    to_string(entry.family), t.process_count(),
                    t.event_count());
      }
      return 0;
    }
    if (const auto dir = args.get("dump")) {
      std::filesystem::create_directories(*dir);
      for (const auto& entry : standard_suite()) {
        std::string file = entry.id;
        for (char& c : file) {
          if (c == '/') c = '_';
        }
        save_trace(*dir + "/" + file + ".trace", entry.make());
      }
      std::printf("wrote %zu traces to %s\n", standard_suite().size(),
                  dir->c_str());
      return 0;
    }
    return usage();
  }

  return usage();
}

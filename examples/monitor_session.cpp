// Monitor session: the full Figure-1 architecture, end to end.
//
// A web-like parallel program (the kind Object-Level Trace watches) is
// "executed"; its per-process event streams race to the central monitoring
// entity in a randomized arrival interleaving. The monitor linearizes them,
// indexes events in its B+-tree, maintains self-organizing cluster
// timestamps, and serves the two query types a visualization engine issues:
// partial-order scrolling and precedence tests. The same session is run with
// the pre-computed Fidge/Mattern backend for a storage comparison.
//
// Two robustness epilogues follow: the same stream pushed through the
// seeded fault injector (showing the MonitorHealth accounting), and a
// mid-stream checkpoint/restore round trip (showing that a restarted
// monitor answers identical queries).
//
// Run:  ./build/examples/monitor_session [--clients N] [--requests N]
#include <cstdio>
#include <sstream>
#include <vector>

#include "monitor/fault_injector.hpp"
#include "monitor/monitor.hpp"
#include "trace/generators.hpp"
#include "trace/snapshot.hpp"
#include "util/cli.hpp"
#include "util/prng.hpp"

int main(int argc, char** argv) {
  using namespace ct;
  const CliArgs args(argc, argv);

  WebServerOptions web;
  web.clients = static_cast<std::size_t>(args.get_int_or("clients", 60));
  web.servers = 8;
  web.backends = 4;
  web.requests = static_cast<std::size_t>(args.get_int_or("requests", 900));
  web.seed = 2024;
  const Trace trace = generate_web_server(web);
  std::printf("parallel program: %s — %zu processes, %zu events\n",
              trace.name().c_str(), trace.process_count(),
              trace.event_count());

  // Split the computation into per-process streams, as the monitoring code
  // in each process would forward them.
  std::vector<std::vector<Event>> streams(trace.process_count());
  for (const EventId id : trace.delivery_order()) {
    streams[id.process].push_back(trace.event(id));
  }

  const auto run_session = [&](MonitorOptions options, const char* label) {
    MonitoringEntity monitor(trace.process_count(), options);
    // Adversarial arrival: random process order, bursty.
    std::vector<std::size_t> cursor(trace.process_count(), 0);
    Prng rng(7);
    std::size_t remaining = trace.event_count();
    std::size_t max_buffered = 0;
    while (remaining > 0) {
      ProcessId p;
      do {
        p = static_cast<ProcessId>(rng.index(trace.process_count()));
      } while (cursor[p] >= streams[p].size());
      const std::size_t burst = 1 + rng.index(8);
      for (std::size_t k = 0; k < burst && cursor[p] < streams[p].size();
           ++k) {
        monitor.ingest(streams[p][cursor[p]++]);
        --remaining;
      }
      max_buffered = std::max(max_buffered, monitor.pending());
    }
    std::printf("\n[%s]\n", label);
    std::printf("  events stored: %zu (peak reorder buffer: %zu)\n",
                monitor.stored(), max_buffered);
    std::printf("  timestamp storage: %.1f Kwords\n",
                static_cast<double>(monitor.timestamp_words()) / 1000.0);
    if (const auto stats = monitor.cluster_stats()) {
      std::printf(
          "  clusters: %zu formed via %zu merges; %zu cluster receives\n",
          stats->final_clusters, stats->merges, stats->cluster_receives);
      std::printf("  avg timestamp ratio vs FM width 300: %.3f\n",
                  stats->average_ratio(300));
    }

    // A visualization engine at work: scroll a client's timeline, then test
    // precedence between its events and a backend's.
    std::printf("  scrolling client P0 events 1..5:\n");
    monitor.scroll(0, 1, [&](const Event& e) {
      std::printf("    %s %s\n",
                  (std::ostringstream() << e.id).str().c_str(),
                  to_string(e.kind));
      return e.id.index < 5;
    });
    const ProcessId backend =
        static_cast<ProcessId>(web.clients + web.servers);
    const EventId client_first{0, 1};
    std::size_t ordered = 0, total = 0;
    for (EventIndex i = 1; i <= trace.process_size(backend); ++i) {
      ordered += monitor.precedes(client_first, EventId{backend, i});
      ++total;
    }
    std::printf("  P0.1 happens-before %zu of %zu backend events\n", ordered,
                total);
  };

  MonitorOptions cluster_opts;
  cluster_opts.backend = TimestampBackend::kClusterDynamic;
  cluster_opts.cluster.max_cluster_size = 13;
  cluster_opts.cluster.fm_vector_width = 300;
  cluster_opts.nth_threshold = 10.0;
  run_session(cluster_opts, "cluster-timestamp backend (merge-on-Nth, CR>10)");

  MonitorOptions fm_opts;
  fm_opts.backend = TimestampBackend::kPrecomputedFm;
  fm_opts.cluster.fm_vector_width = 300;
  run_session(fm_opts, "pre-computed Fidge/Mattern backend");

  // ---- robustness epilogue 1: a lossy network between program and monitor.
  // The same arrival stream passes through the seeded fault injector; the
  // delivery manager quarantines what it cannot order, evicts what it cannot
  // hold, and the health counters account for every record.
  {
    std::vector<Event> arrival;
    std::vector<std::size_t> cursor(trace.process_count(), 0);
    Prng rng(7);
    std::size_t remaining = trace.event_count();
    while (remaining > 0) {
      ProcessId p;
      do {
        p = static_cast<ProcessId>(rng.index(trace.process_count()));
      } while (cursor[p] >= streams[p].size());
      const std::size_t burst = 1 + rng.index(8);
      for (std::size_t k = 0; k < burst && cursor[p] < streams[p].size();
           ++k) {
        arrival.push_back(streams[p][cursor[p]++]);
        --remaining;
      }
    }

    MonitorOptions lossy_opts = cluster_opts;
    lossy_opts.delivery.max_buffered = 4096;
    lossy_opts.delivery.orphan_timeout = 20000;
    MonitoringEntity monitor(trace.process_count(), lossy_opts);

    FaultPlan plan;
    plan.seed = 99;
    plan.drop_rate = 0.02;
    plan.dup_rate = 0.01;
    plan.reorder_rate = 0.02;
    FaultInjector injector(plan, [&](const Event& e) { monitor.ingest(e); });
    for (const Event& e : arrival) injector.push(e);
    injector.flush();

    const FaultStats& faults = injector.stats();
    const MonitorHealth health = monitor.health();
    std::printf("\n[fault-injected session: 2%% drop, 1%% dup, 2%% reorder]\n");
    std::printf("  injector: %llu seen, %llu forwarded (%llu dropped, "
                "%llu duplicated, %llu reordered)\n",
                static_cast<unsigned long long>(faults.seen),
                static_cast<unsigned long long>(faults.forwarded),
                static_cast<unsigned long long>(faults.dropped),
                static_cast<unsigned long long>(faults.duplicated),
                static_cast<unsigned long long>(faults.reordered));
    std::printf("  health: ingested=%llu delivered=%llu duplicates=%llu "
                "quarantined=%llu evicted=%llu pending=%llu\n",
                static_cast<unsigned long long>(health.ingested),
                static_cast<unsigned long long>(health.delivered),
                static_cast<unsigned long long>(health.duplicates),
                static_cast<unsigned long long>(health.quarantined),
                static_cast<unsigned long long>(health.evicted),
                static_cast<unsigned long long>(health.pending));
    std::printf("  accounting invariant: %s\n",
                health.accounted() ? "holds" : "VIOLATED");
    std::printf("  delivered %zu of %zu events despite the loss cascade\n",
                monitor.stored(), trace.event_count());
  }

  // ---- robustness epilogue 2: checkpoint mid-stream, restart, catch up.
  {
    MonitoringEntity monitor(trace.process_count(), cluster_opts);
    std::vector<Event> arrival;
    std::vector<std::size_t> cursor(trace.process_count(), 0);
    Prng rng(7);
    std::size_t remaining = trace.event_count();
    while (remaining > 0) {
      ProcessId p;
      do {
        p = static_cast<ProcessId>(rng.index(trace.process_count()));
      } while (cursor[p] >= streams[p].size());
      arrival.push_back(streams[p][cursor[p]++]);
      --remaining;
    }
    const std::size_t cut = arrival.size() / 2;
    for (std::size_t i = 0; i < cut; ++i) monitor.ingest(arrival[i]);

    std::stringstream checkpoint;
    save_snapshot(checkpoint, monitor);
    std::printf("\n[checkpoint/restore at event %zu of %zu]\n", cut,
                arrival.size());
    std::printf("  snapshot: %zu bytes (CTS1), %zu delivered events\n",
                checkpoint.str().size(), monitor.stored());

    const auto restored = load_snapshot(checkpoint);
    // The restarted monitor replays the stream from far enough back to
    // cover everything that was still buffered at the checkpoint (here:
    // from the start). The overlap is harmless — anything the snapshot
    // already delivered drops as a duplicate.
    for (std::size_t i = 0; i < arrival.size(); ++i) {
      restored->ingest(arrival[i]);
      if (i >= cut) monitor.ingest(arrival[i]);
    }
    const bool same_words =
        restored->timestamp_words() == monitor.timestamp_words();
    const bool same_digest =
        restored->state_digest() == monitor.state_digest();
    std::printf("  after catch-up: original stored %zu, restored stored %zu "
                "(%llu duplicate re-feeds dropped)\n",
                monitor.stored(), restored->stored(),
                static_cast<unsigned long long>(
                    restored->health().duplicates));
    std::printf("  timestamp words equal: %s; state digest equal: %s\n",
                same_words ? "yes" : "NO", same_digest ? "yes" : "NO");
  }

  return 0;
}
